"""Tests for deterministic random init and block→place mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.grid import Grid
from repro.matrix.mapping import (
    CyclicBlockMap,
    GroupedBlockMap,
    PlaceGridBlockMap,
    factor_place_grid,
)
from repro.matrix.random import (
    LinkMatrix,
    random_dense_block,
    random_sparse_block,
    random_vector,
)


class TestRandomBlocks:
    def test_dense_deterministic(self):
        a = random_dense_block(7, 1, 2, 4, 5)
        b = random_dense_block(7, 1, 2, 4, 5)
        assert np.array_equal(a.data, b.data)

    def test_dense_blocks_differ(self):
        a = random_dense_block(7, 1, 2, 4, 5)
        b = random_dense_block(7, 2, 1, 4, 5)
        assert not np.array_equal(a.data, b.data)

    def test_sparse_deterministic_and_sized(self):
        a = random_sparse_block(3, 0, 0, 10, 10, 0.2)
        b = random_sparse_block(3, 0, 0, 10, 10, 0.2)
        assert a.nnz == 20
        assert np.array_equal(a.to_dense(), b.to_dense())

    def test_sparse_density_bounds(self):
        with pytest.raises(ValueError):
            random_sparse_block(0, 0, 0, 4, 4, 1.5)

    def test_sparse_empty(self):
        assert random_sparse_block(0, 0, 0, 4, 4, 0.0).nnz == 0
        assert random_sparse_block(0, 0, 0, 0, 4, 0.5).nnz == 0

    def test_vector_deterministic_by_tag(self):
        assert np.array_equal(random_vector(5, 8, tag=1), random_vector(5, 8, tag=1))
        assert not np.array_equal(random_vector(5, 8, tag=1), random_vector(5, 8, tag=2))


class TestLinkMatrix:
    def test_column_stochastic(self):
        link = LinkMatrix(30, 4, seed=1)
        full = link.block(0, 30, 0, 30).to_dense()
        assert np.allclose(full.sum(axis=0), 1.0)

    @settings(max_examples=20)
    @given(
        n=st.integers(4, 50),
        rb=st.integers(1, 4),
        cb=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    def test_grid_independence(self, n, rb, cb, seed):
        """Any blocking of the link matrix reassembles to the same matrix."""
        link = LinkMatrix(n, 3, seed=seed)
        full = link.block(0, n, 0, n).to_dense()
        grid = Grid.partition(n, n, rb, cb)
        assembled = np.zeros((n, n))
        for brb, bcb in grid.iter_blocks():
            r = grid.block_region(brb, bcb)
            assembled[r.row_start : r.row_end, r.col_start : r.col_end] = link.block(
                r.row_start, r.row_end, r.col_start, r.col_end
            ).to_dense()
        assert np.array_equal(assembled, full)

    def test_destination_range(self):
        link = LinkMatrix(10, 5, seed=3)
        rows, cols = link.destinations(0, 10)
        assert rows.min() >= 0 and rows.max() < 10
        assert len(rows) == 50

    def test_nnz_estimate(self):
        assert LinkMatrix(10, 5).nnz_estimate() == 50

    def test_invalid(self):
        with pytest.raises(ValueError):
            LinkMatrix(0, 5)
        with pytest.raises(ValueError):
            LinkMatrix(5, 0)


class TestBlockMaps:
    def grid(self, blocks=8):
        return Grid.partition(16, 4, blocks, 1)

    def test_grouped_consecutive(self):
        # Fig 1-b: blocks dealt as consecutive near-even runs.
        m = GroupedBlockMap(self.grid(6), 3)
        assert m.blocks_of_place(0) == [(0, 0), (1, 0)]
        assert m.blocks_of_place(1) == [(2, 0), (3, 0)]
        assert m.blocks_of_place(2) == [(4, 0), (5, 0)]

    def test_grouped_uneven(self):
        m = GroupedBlockMap(self.grid(7), 3)
        assert m.load_per_place() == [3, 2, 2]

    def test_grouped_rejects_too_few_blocks(self):
        with pytest.raises(ValueError):
            GroupedBlockMap(self.grid(2), 3)

    def test_cyclic(self):
        m = CyclicBlockMap(self.grid(6), 3)
        assert m.place_index_of(0, 0) == 0
        assert m.place_index_of(1, 0) == 1
        assert m.place_index_of(3, 0) == 0
        assert m.load_per_place() == [2, 2, 2]

    def test_place_grid_map(self):
        grid = Grid.partition(8, 8, 4, 4)
        m = PlaceGridBlockMap(grid, 2, 2)
        assert m.num_places == 4
        assert m.place_index_of(0, 0) == 0
        assert m.place_index_of(0, 1) == 1
        assert m.place_index_of(1, 0) == 2
        assert m.place_index_of(2, 2) == 0  # wraps cyclically

    def test_place_grid_validation(self):
        grid = Grid.partition(8, 8, 2, 2)
        with pytest.raises(ValueError):
            PlaceGridBlockMap(grid, 4, 1)

    @given(blocks=st.integers(1, 40), places=st.integers(1, 10))
    def test_grouped_properties(self, blocks, places):
        if blocks < places:
            return
        grid = Grid.partition(blocks * 2, 3, blocks, 1)
        m = GroupedBlockMap(grid, places)
        loads = m.load_per_place()
        assert sum(loads) == blocks
        assert max(loads) - min(loads) <= 1
        # Consistency between the two lookup directions.
        for p in range(places):
            for rb, cb in m.blocks_of_place(p):
                assert m.place_index_of(rb, cb) == p

    @given(blocks=st.integers(1, 30), places=st.integers(1, 8))
    def test_cyclic_even_load(self, blocks, places):
        grid = Grid.partition(blocks, 3, blocks, 1)
        m = CyclicBlockMap(grid, places)
        loads = m.load_per_place()
        assert sum(loads) == blocks
        assert max(loads) - min(loads) <= 1


class TestFactorPlaceGrid:
    def test_square(self):
        assert factor_place_grid(16) == (4, 4)

    def test_rectangular(self):
        rp, cp = factor_place_grid(12)
        assert rp * cp == 12
        assert factor_place_grid(7) == (7, 1)

    def test_one(self):
        assert factor_place_grid(1) == (1, 1)
