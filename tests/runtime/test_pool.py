"""Tests for PlacePool / PlaceLease: carving, economics, spare contention."""

import pytest

from repro.runtime import BORROW, DEDICATED, POOLED, CostModel, Runtime
from repro.runtime.pool import ACTIVE, RELEASED


def make_rt(n=8, spares=0, resilient=True):
    return Runtime(n, cost=CostModel.zero(), resilient=resilient, spares=spares)


class TestCarving:
    def test_lease_skips_place_zero(self):
        rt = make_rt(5)
        lease = rt.pool.lease(size=3)
        assert 0 not in lease.member_ids
        assert lease.member_ids == {1, 2, 3}
        assert lease.driver.id == 1

    def test_include_place_zero(self):
        rt = make_rt(4)
        lease = rt.pool.lease(size=4, include_place_zero=True)
        assert lease.member_ids == {0, 1, 2, 3}
        assert lease.driver.id == 0

    def test_insufficient_free_raises_and_undoes(self):
        rt = make_rt(4)
        before = rt.pool.free_live
        with pytest.raises(ValueError):
            rt.pool.lease(size=10)
        assert rt.pool.free_live == before
        # The pool is still fully usable after the failed carve.
        lease = rt.pool.lease(size=3)
        assert len(lease.member_ids) == 3

    def test_two_leases_are_disjoint(self):
        rt = make_rt(7)
        a = rt.pool.lease(size=3)
        b = rt.pool.lease(size=3)
        assert not (a.member_ids & b.member_ids)
        for pid in a.member_ids:
            assert rt.pool.lease_of(pid) is a
        for pid in b.member_ids:
            assert rt.pool.lease_of(pid) is b

    def test_release_returns_places(self):
        rt = make_rt(5)
        lease = rt.pool.lease(size=4)
        assert rt.pool.free_live == 1  # place 0
        lease.release()
        assert lease.state == RELEASED
        assert rt.pool.free_live == 5
        # Idempotent.
        lease.release()
        assert rt.pool.free_live == 5

    def test_dead_member_not_returned_to_free(self):
        rt = make_rt(5)
        lease = rt.pool.lease(size=4)
        victim = sorted(lease.member_ids - {lease.driver.id})[0]
        rt.kill(victim)
        lease.release()
        assert victim not in rt.pool._free_ids
        assert rt.pool.free_live == 4

    def test_dead_free_place_skipped_at_carve(self):
        rt = make_rt(6)
        rt.kill(2)
        lease = rt.pool.lease(size=4)
        assert 2 not in lease.member_ids
        assert lease.member_ids == {1, 3, 4, 5}

    def test_released_lease_rejects_claims(self):
        rt = make_rt(5, spares=1)
        lease = rt.pool.lease(size=2)
        lease.release()
        with pytest.raises(ValueError):
            lease.claim_spare()


class TestDedicatedEconomics:
    def test_carve_claims_reserve_up_front(self):
        rt = make_rt(5, spares=3)
        lease = rt.pool.lease(size=2, economics=DEDICATED, dedicated_spares=2)
        assert rt.pool.reserve_remaining == 1
        assert lease.spares_remaining == 2

    def test_claims_only_own_spares(self):
        rt = make_rt(6, spares=2)
        a = rt.pool.lease(size=2, economics=DEDICATED, dedicated_spares=1)
        b = rt.pool.lease(size=2, economics=DEDICATED, dedicated_spares=1)
        assert a.claim_spare() is not None
        # a's entitlement is exhausted even though b's spare is live.
        assert a.claim_spare() is None
        assert a.spares_remaining == 0
        assert b.spares_remaining == 1

    def test_reserve_dry_at_carve_raises_and_undoes(self):
        rt = make_rt(6, spares=1)
        free_before = rt.pool.free_live
        with pytest.raises(ValueError):
            rt.pool.lease(size=2, economics=DEDICATED, dedicated_spares=2)
        assert rt.pool.free_live == free_before
        assert rt.pool.reserve_remaining == 1
        assert rt.pool.reserve_claimed == 0

    def test_release_returns_unclaimed_spares_to_reserve(self):
        rt = make_rt(5, spares=2)
        lease = rt.pool.lease(size=2, economics=DEDICATED, dedicated_spares=2)
        assert rt.pool.reserve_remaining == 0
        lease.claim_spare()
        lease.release()
        # One spare was consumed (now a lease member, returned to free);
        # the unclaimed one goes back to the shared reserve.
        assert rt.pool.reserve_remaining == 1
        assert rt.pool.reserve_claimed == 0

    def test_dead_dedicated_spare_not_claimable(self):
        rt = make_rt(5, spares=2)
        lease = rt.pool.lease(size=2, economics=DEDICATED, dedicated_spares=2)
        spare_ids = sorted(lease._dedicated_ids)
        rt.kill(spare_ids[0])
        assert lease.spares_remaining == 1
        claimed = lease.claim_spare()
        assert claimed is not None
        assert claimed.id == spare_ids[1]
        assert lease.claim_spare() is None


class TestPooledContention:
    def test_two_leases_race_last_spare(self):
        """Satellite: two tenants race the final reserve place."""
        rt = make_rt(6, spares=1)
        a = rt.pool.lease(size=2, economics=POOLED)
        b = rt.pool.lease(size=2, economics=POOLED)
        assert a.spares_remaining == 1
        assert b.spares_remaining == 1  # shared view of the same place
        won = a.claim_spare()
        assert won is not None
        # First-come first-served: the loser sees a dry reserve and must
        # fall back to shrinking, not steal the winner's place.
        assert b.spares_remaining == 0
        assert b.claim_spare() is None
        assert won.id in a.member_ids
        assert won.id not in b.member_ids

    def test_spare_dies_while_queued(self):
        """Satellite: a reserve place dying before anyone claims it."""
        rt = make_rt(5, spares=3)
        lease = rt.pool.lease(size=2, economics=POOLED)
        reserve_ids = sorted(rt.pool._reserve_ids)
        rt.kill(reserve_ids[0])
        assert lease.spares_remaining == 2  # O(1), already pruned
        claimed = lease.claim_spare()
        assert claimed is not None
        assert claimed.id == reserve_ids[1]  # dead head skipped

    def test_claim_after_pool_drained(self):
        """Satellite: claim_spare() after the reserve is exhausted."""
        rt = make_rt(5, spares=2)
        lease = rt.pool.lease(size=2, economics=POOLED)
        assert lease.claim_spare() is not None
        assert lease.claim_spare() is not None
        assert lease.spares_remaining == 0
        assert lease.claim_spare() is None
        # Still None on repeat — no hidden state corruption.
        assert lease.claim_spare() is None

    def test_kill_entire_reserve(self):
        rt = make_rt(5, spares=2)
        lease = rt.pool.lease(size=2, economics=POOLED)
        for pid in sorted(rt.pool._reserve_ids):
            rt.kill(pid)
        assert rt.pool.reserve_remaining == 0
        assert lease.spares_remaining == 0
        assert lease.claim_spare() is None


class TestBorrowEconomics:
    def test_borrows_idle_after_reserve_dry(self):
        rt = make_rt(6, spares=1)
        lease = rt.pool.lease(size=2, economics=BORROW)
        first = lease.claim_spare()  # from the reserve
        assert first is not None
        assert lease.borrows == 0
        second = lease.claim_spare()  # borrowed from idle
        assert second is not None
        assert lease.borrows == 1
        assert second.id in {3, 4, 5}

    def test_never_borrows_place_zero(self):
        rt = make_rt(3, spares=0)
        lease = rt.pool.lease(size=2, economics=BORROW)
        # Only place 0 is left free — not lendable.
        assert rt.pool.free_live == 1
        assert rt.pool.lendable_free == 0
        assert lease.spares_remaining == 0
        assert lease.claim_spare() is None
        assert rt.is_alive(0)
        assert 0 in rt.pool._free_ids

    def test_spares_remaining_counts_idle(self):
        rt = make_rt(6, spares=1)
        lease = rt.pool.lease(size=2, economics=BORROW)
        # 1 reserve + 3 idle workers (places 3..5; place 0 excluded).
        assert lease.spares_remaining == 4


class TestAccounting:
    def test_o1_counters_match_ground_truth_after_kills(self):
        rt = make_rt(10, spares=4)
        lease = rt.pool.lease(size=4, economics=POOLED)
        for victim in (2, 5, 11, 12):  # member, free, reserve, reserve
            rt.kill(victim)
        live_free = sum(
            1 for pid in rt.pool._free_ids if rt.is_alive(pid)
        )
        live_reserve = sum(
            1 for pid in rt.pool._reserve_ids if rt.is_alive(pid)
        )
        assert rt.pool.free_live == live_free
        assert rt.pool.reserve_remaining == live_reserve
        assert lease.spares_remaining == live_reserve

    def test_reserve_peak_claimed(self):
        rt = make_rt(5, spares=2)
        lease = rt.pool.lease(size=2, economics=POOLED)
        lease.claim_spare()
        lease.claim_spare()
        assert rt.pool.reserve_peak_claimed == 2
        lease.release()
        assert rt.pool.reserve_claimed == 0
        assert rt.pool.reserve_peak_claimed == 2  # high-water mark sticks

    def test_ever_ids_tracks_claims(self):
        rt = make_rt(5, spares=1)
        lease = rt.pool.lease(size=2, economics=POOLED)
        carved = set(lease.member_ids)
        spare = lease.claim_spare()
        assert lease.ever_ids == carved | {spare.id}
        rt.kill(spare.id)
        assert spare.id in lease.ever_ids  # dead members stay in the record


class TestDefaultLease:
    def test_default_lease_spans_world(self):
        rt = make_rt(4, spares=2)
        lease = rt.default_lease
        assert lease.member_ids == {0, 1, 2, 3}
        assert lease.driver.id == 0
        assert lease.state == ACTIVE

    def test_default_lease_cached(self):
        rt = make_rt(4)
        assert rt.default_lease is rt.default_lease

    def test_runtime_claim_spare_unchanged(self):
        """The classic single-job API still draws from the reserve."""
        rt = make_rt(4, spares=2)
        assert rt.spares_remaining == 2
        spare = rt.claim_spare()
        assert spare is not None
        assert spare.id == 4
        assert rt.spares_remaining == 1
