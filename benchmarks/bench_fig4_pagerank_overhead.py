"""Figure 4 — PageRank: resilient X10 overhead.

Same protocol for the PageRank benchmark (sparse DistBlockMatrix, 2 M edges
per place, weak scaling).

Paper shape: non-resilient grows 38 → 360 ms (dominated by data movement:
the duplicated rank vector grows with the place count); the resilient
overhead is by far the smallest of the three apps — PageRank uses fewer
finish constructs per iteration and its long tasks hide most of the
place-zero bookkeeping.  (The paper measures < 5 %; our simulator, which
charges uniform per-task bookkeeping, lands at ~15-20 % — still ~6x less
than LinReg's.  See EXPERIMENTS.md.)
"""

from _common import emit, overhead_report
from repro.bench.calibration import PaperTargets
from repro.bench.harness import run_overhead_sweep


def test_fig4_pagerank_overhead(benchmark):
    series = benchmark.pedantic(
        lambda: run_overhead_sweep("pagerank", iterations=30), rounds=1, iterations=1
    )
    report = overhead_report(
        "pagerank", series, PaperTargets.pagerank_nonres_ms, PaperTargets.pagerank_res_ms
    )
    emit("Figure 4 — PageRank: resilient X10 overhead (time per iteration)", report)
    nonres = series.values["non-resilient finish"]
    res = series.values["resilient finish"]
    # Strong growth with places (data movement), small resilient overhead.
    assert nonres[-1] > 4.0 * nonres[0]
    assert all(r >= n for r, n in zip(res, nonres))
    assert res[-1] / nonres[-1] < 1.35  # far below the regressions' ~2x
