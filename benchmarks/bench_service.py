"""Service layer — throughput/latency vs offered load, spare economics.

Two experiments over seeded 30-job mixed streams (linreg / logreg /
pagerank / gnmf, Zipf-sized tenants) on one shared 16-worker pool under
chaos (independent crashes + adjacent-pair bursts):

* **offered load sweep** — arrival rate from 0.5 to 4 jobs/s for the
  dedicated and pooled spare economics; records throughput, job latency
  percentiles, queue wait, reserve occupancy, and survival.
* **reserve economics** — per-job kill schedules are identical across
  modes, so the pooled reserve is swept downward to find the smallest
  size whose survival (on the jobs admitted in both runs) still matches
  dedicated economics with a 4-place reserve.  The acceptance claim: the
  pooled reserve is *strictly smaller* at equal survival, and no run
  anywhere has a cross-tenant abort.  Shrink recovery keeps survival
  flat all the way down, so the sweep also records full-width (no
  shrink) completion — the thing extra reserve places actually buy —
  and the smallest reserve holding it level with dedicated.

Writes ``results/service.csv`` and ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import os

from _common import emit, results_path
from repro.bench import figures
from repro.service import (
    ServiceConfig,
    full_width_on_common_jobs,
    run_service,
    survival_on_common_jobs,
)

N_JOBS = 30
SEED = 42
RATES = (0.5, 1.0, 2.0, 4.0)
CHAOS = dict(crash_rate=0.4, pair_rate=0.03)
DEDICATED_RESERVE = 4


def _stream_config(economics: str, rate: float, reserve: int) -> ServiceConfig:
    return ServiceConfig(
        n_jobs=N_JOBS,
        seed=SEED,
        arrival_rate=rate,
        economics=economics,
        reserve=reserve,
        **CHAOS,
    )


def _load_sweep() -> dict:
    rows = {}
    for economics in ("dedicated", "pooled"):
        reserve = DEDICATED_RESERVE
        for rate in RATES:
            report = run_service(_stream_config(economics, rate, reserve))
            assert report.cross_tenant_aborts == 0, report.summary()
            assert not report.violations, report.violations
            rows[(economics, rate)] = report.to_dict()
    return rows


def _reserve_economics() -> dict:
    """Smallest pooled reserve matching dedicated survival on one stream."""
    rate = 1.5
    dedicated = run_service(
        _stream_config("dedicated", rate, DEDICATED_RESERVE)
    )
    assert dedicated.cross_tenant_aborts == 0
    chosen = None
    sweep = []
    full_width_parity = None
    for reserve in range(DEDICATED_RESERVE, -1, -1):
        pooled = run_service(_stream_config("pooled", rate, reserve))
        assert pooled.cross_tenant_aborts == 0, pooled.summary()
        assert not pooled.violations, pooled.violations
        surv_ded, surv_pool = survival_on_common_jobs(dedicated, pooled)
        full_ded, full_pool = full_width_on_common_jobs(dedicated, pooled)
        sweep.append(
            {
                "reserve": reserve,
                "survival_common_pooled": surv_pool,
                "survival_common_dedicated": surv_ded,
                "full_width_common_pooled": full_pool,
                "full_width_common_dedicated": full_ded,
                "admitted": pooled.admitted,
                "degraded": pooled.degraded,
                "peak_claimed": pooled.reserve_peak_claimed,
            }
        )
        matches = surv_pool >= surv_ded and pooled.admitted >= dedicated.admitted
        if reserve < DEDICATED_RESERVE and matches:
            chosen = {"reserve": reserve, "report": pooled.to_dict(),
                      "survival_common": surv_pool,
                      "full_width_common": full_pool}
        # Secondary story: shrink recovery keeps survival flat all the way
        # down, so full-width completion is what extra reserve places buy —
        # record the smallest reserve holding that level with dedicated too.
        if matches and full_pool >= full_ded:
            full_width_parity = reserve
    assert chosen is not None, "no pooled reserve matched dedicated survival"
    assert chosen["reserve"] < DEDICATED_RESERVE
    assert full_width_parity is not None
    return {
        "dedicated": dedicated.to_dict(),
        "dedicated_reserve": DEDICATED_RESERVE,
        "pooled_equal_survival": chosen,
        "reserve_savings": DEDICATED_RESERVE - chosen["reserve"],
        "full_width_parity_reserve": full_width_parity,
        "sweep": sweep,
    }


def run_all():
    return _load_sweep(), _reserve_economics()


def test_service_bench(benchmark):
    load_rows, economics = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{N_JOBS}-job mixed streams, 16 workers, seed {SEED}, chaos "
        f"crash={CHAOS['crash_rate']:g} pair={CHAOS['pair_rate']:g}:",
        "econ       rate   thput   p50     p95     p99     wait    surv  xta",
    ]
    for (econ, rate), row in load_rows.items():
        lines.append(
            f"{econ:<10s} {rate:>4.1f}  {row['throughput']:6.3f}  "
            f"{row['latency_p50']:.3f}  {row['latency_p95']:.3f}  "
            f"{row['latency_p99']:.3f}  {row['mean_queue_wait']:.3f}  "
            f"{row['survival_rate']:.0%}  {row['cross_tenant_aborts']}"
        )
    pooled = economics["pooled_equal_survival"]
    lines += [
        "",
        f"reserve economics @ rate 1.5 (rates on common admitted jobs):",
        f"  dedicated reserve {economics['dedicated_reserve']} -> pooled "
        f"reserve {pooled['reserve']} at equal survival "
        f"({pooled['survival_common']:.0%}) — "
        f"{economics['reserve_savings']} place(s) saved",
        f"  full-width (no-shrink) parity holds down to pooled reserve "
        f"{economics['full_width_parity_reserve']}",
    ]

    row_keys = [f"{econ}:{rate:g}" for (econ, rate) in load_rows]
    csv = figures.write_csv(
        results_path("service.csv"),
        row_keys,
        {
            name: [load_rows[k][name] for k in load_rows]
            for name in (
                "throughput", "latency_p50", "latency_p95", "latency_p99",
                "mean_queue_wait", "survival_rate", "completed", "data_loss",
                "rejected", "reserve_peak_claimed", "reserve_mean_occupancy",
                "cross_tenant_aborts",
            )
        },
        x_name="economics:rate",
    )
    lines.append(f"series written to {csv}")
    emit("Service layer — offered load and spare economics", "\n".join(lines))

    bench_json = os.path.join(os.path.dirname(results_path("x")), os.pardir,
                              "BENCH_service.json")
    with open(os.path.abspath(bench_json), "w", encoding="utf-8") as fh:
        json.dump(
            {
                "config": {
                    "n_jobs": N_JOBS, "seed": SEED, "rates": RATES,
                    "workers": 16, **CHAOS,
                },
                "load_sweep": {f"{e}:{r:g}": row
                               for (e, r), row in load_rows.items()},
                "reserve_economics": economics,
            },
            fh,
            indent=2,
        )
