"""Pool repair: ``Runtime.revive`` returns killed places to service.

A revived place models an operator swapping the failed host: same id,
empty heap, clock at the current virtual time plus a startup round-trip.
The pool re-files it where it came from (free list or spare reserve), so
later restores and leases can use it again.
"""

import pytest

from repro.runtime import CostModel, Runtime
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.exceptions import DeadPlaceException
from repro.service.service import ClusterService, ServiceConfig


def make_rt(n=6, spares=0, **kw):
    return Runtime(n, cost=CostModel.zero(), resilient=True, spares=spares, **kw)


class TestReviveSemantics:
    def test_revive_restores_liveness_with_empty_heap(self):
        rt = make_rt(4)
        rt.heap_of(2).put("x", 1)
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            rt.heap_of(2)
        place = rt.revive(2)
        assert place.id == 2
        assert rt.is_alive(2)
        assert len(rt.heap_of(2)) == 0  # state died with the process
        assert rt.death_time(2) is None
        assert rt.stats.repairs == 1

    def test_revive_requires_a_dead_place(self):
        rt = make_rt(4)
        with pytest.raises(ValueError, match="dead place"):
            rt.revive(2)

    def test_revived_clock_charges_a_startup_roundtrip(self):
        rt = Runtime(4, cost=CostModel(latency=0.5), resilient=True)
        rt.kill(2)
        rt.finish_all(rt.live_group(rt.world), lambda ctx: None)
        t = rt.clock.global_time()
        rt.revive(2)
        assert rt.clock.now(2) >= t  # no time travel into the past

    def test_revived_place_schedules_work_again(self):
        rt = make_rt(4)
        rt.kill(2)
        rt.revive(2)
        hits = []
        rt.finish_all(rt.world, lambda ctx: hits.append(ctx.place.id))
        assert sorted(hits) == [0, 1, 2, 3]

    def test_double_death_and_repair(self):
        rt = make_rt(4)
        for _ in range(2):
            rt.kill(3)
            rt.revive(3)
        assert rt.is_alive(3)
        assert rt.stats.repairs == 2


class TestPoolRefiling:
    def test_free_place_returns_to_free(self):
        rt = make_rt(6)
        before = rt.pool.free_live
        rt.kill(4)
        assert rt.pool.free_live == before - 1
        rt.revive(4)
        assert rt.pool.free_live == before
        assert 4 in rt.pool._free_ids

    def test_dead_spare_returns_to_reserve(self):
        rt = make_rt(6, spares=2)
        spare_ids = set(rt.pool._reserve_ids)
        victim = sorted(spare_ids)[0]
        rt.kill(victim)
        assert rt.spares_remaining == 1
        rt.revive(victim)
        assert rt.spares_remaining == 2
        # And the revived spare is claimable.
        claimed = {rt.claim_spare().id, rt.claim_spare().id}
        assert claimed == spare_ids

    def test_leased_place_rejoins_free_at_release(self):
        rt = make_rt(6)
        lease = rt.pool.lease(size=3)
        victim = sorted(lease.member_ids - {lease.driver.id})[0]
        rt.kill(victim)
        rt.revive(victim)
        # Still leased: not in the free list until the lease ends.
        assert victim not in rt.pool._free_ids
        lease.release()
        assert victim in rt.pool._free_ids

    def test_detector_remonitors_revived_place(self):
        rt = make_rt(4)
        detector = PhiAccrualDetector(rt, detect_timeout=1.0)
        rt.detector = detector
        for pid in range(1, 4):
            detector.monitor(pid)
        rt.kill(2)
        rt.revive(2)
        assert 2 in detector.monitored()


class TestServiceRepair:
    def _config(self, mttr, seed=3):
        return ServiceConfig(
            places=10,
            n_jobs=12,
            seed=seed,
            crash_rate=0.08,
            pair_rate=0.02,
            cost_profile="zero",
            repair_mttr=mttr,
        )

    def test_mttr_heals_killed_places(self):
        report = ClusterService(self._config(mttr=2.0)).run()
        assert report.total_kills > 0
        assert report.repaired_places > 0
        assert report.repaired_places <= report.total_kills

    def test_zero_mttr_disables_repair(self):
        report = ClusterService(self._config(mttr=0.0)).run()
        assert report.total_kills > 0
        assert report.repaired_places == 0

    def test_repair_is_deterministic(self):
        a = ClusterService(self._config(mttr=2.0)).run()
        b = ClusterService(self._config(mttr=2.0)).run()
        assert a.repaired_places == b.repaired_places
        assert a.to_dict() == b.to_dict()

    def test_negative_mttr_rejected(self):
        with pytest.raises(ValueError, match="repair_mttr"):
            self._config(mttr=-1.0)
