"""Checkpoint-free recovery — reconstruction vs rollback cost.

Two protocols over the ABFT CG application:

* **burst axis** — at each place count, k places (k = 1..3) die
  simultaneously at iteration 15 of 30.  Under ``recovery="reconstruct"``
  the executor rebuilds exactly the k lost partitions from the redundant
  copies and survivors' data (``restored_iterations`` must stay empty);
  under classic checkpoint/restart the same burst rolls every place back
  to the last checkpoint.  Reconstruction cost must scale with the number
  of lost partitions, not with the group size or the iteration count.
* **rollback-depth axis** — at a fixed shape, the failure point slides
  away from the last checkpoint (depth 1, 5 and 9 iterations).  Restore
  cost grows with the depth (the rolled-back work is re-executed);
  reconstruction cost is flat — the failure point is irrelevant when no
  work is lost.

Every reconstruct run's answer is checked against the failure-free
non-resilient baseline to 1e-8 (the ISSUE's acceptance bar; in practice
the trajectory is bit-exact and the re-solved partitions land ~1e-16 off).

Writes ``results/reconstruct.csv`` and ``BENCH_recovery.json``.
"""

from __future__ import annotations

import json
import os

import numpy as np

from _common import emit, results_path
from repro.apps.nonresilient import CGNonResilient
from repro.apps.resilient import CGResilient
from repro.bench import figures
from repro.bench.calibration import cg_bench_workload, cg_cost
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import make_placement
from repro.runtime.cost import CostModel
from repro.runtime.factory import make_runtime

PLACES_AXIS = [8, 16, 32, 64]
FAILURES_AXIS = [1, 2, 3]
ITERATIONS = 30
INTERVAL = 10
FAIL_AT = 15
REPLICAS = 3  # every k <= 3 burst keeps at least one copy of each partition

DEPTH_PLACES = 16
DEPTH_FAIL_AT = [11, 15, 19]  # rollback depths 1, 5, 9 past the ckpt at 10


def _victims(places: int, k: int):
    """k distinct non-zero victims spread across the group."""
    return [max(1, (i + 1) * places // (k + 1)) for i in range(k)]


def _baseline(places: int) -> np.ndarray:
    """Failure-free CG answer (cost-model independent)."""
    rt = make_runtime(places, cost=CostModel.zero())
    app = CGNonResilient(rt, cg_bench_workload(ITERATIONS))
    app.run()
    return np.asarray(app.solution())


def _cell(
    places: int,
    k: int,
    recovery: str,
    fail_at: int = FAIL_AT,
    interval: int = INTERVAL,
) -> dict:
    rt = make_runtime(places, cost=cg_cost(), resilient=True, spares=k)
    app = CGResilient(rt, cg_bench_workload(ITERATIONS))
    for victim in _victims(places, k):
        rt.injector.kill_at_iteration(victim, iteration=fail_at)
    report = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=interval,
        mode=RestoreMode.REPLACE_REDUNDANT,
        replicas=REPLICAS,
        placement=make_placement("spread"),
        recovery=recovery,
    ).run()
    return {
        "total_s": report.total_time,
        "step_s": report.step_time,
        "reconstruct_s": report.reconstruct_time,
        "restore_s": report.restore_time,
        "redundancy_s": report.redundancy_time,
        "checkpoint_s": report.checkpoint_time,
        "reconstructions": report.reconstructions,
        "reconstructed_partitions": report.reconstructed_partitions,
        "restores": report.restores,
        "rolled_back_iterations": len(report.restored_iterations),
        "solution": np.asarray(app.solution()),
    }


def run_all():
    burst = {
        (places, k, recovery): _cell(places, k, recovery)
        for places in PLACES_AXIS
        for k in FAILURES_AXIS
        for recovery in ("reconstruct", "checkpoint")
    }
    depth = {
        (fail_at, recovery): _cell(DEPTH_PLACES, 1, recovery, fail_at=fail_at)
        for fail_at in DEPTH_FAIL_AT
        for recovery in ("reconstruct", "checkpoint")
    }
    # Equal-protection classic run: the only checkpoint/restart config that
    # also bounds the lost work to ~zero is a checkpoint *every* iteration.
    equal_protection = _cell(
        DEPTH_PLACES, 1, "checkpoint", fail_at=FAIL_AT, interval=1
    )
    baselines = {places: _baseline(places) for places in PLACES_AXIS}
    return burst, depth, equal_protection, baselines


def test_reconstruct_vs_restore(benchmark):
    burst, depth, equal_protection, baselines = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    lines = [
        f"{ITERATIONS} iterations, ckpt every {INTERVAL}, burst at iteration "
        f"{FAIL_AT}, replicas={REPLICAS} (spread placement):",
        "places  k  reconstruct(s)  redundancy(s)  restore-path total(s)  "
        "reconstruct total(s)",
    ]
    for places in PLACES_AXIS:
        for k in FAILURES_AXIS:
            rec = burst[(places, k, "reconstruct")]
            cls = burst[(places, k, "checkpoint")]
            lines.append(
                f"{places:6d} {k:2d}  {rec['reconstruct_s']:13.4f}  "
                f"{rec['redundancy_s']:12.4f}  {cls['total_s']:20.4f}  "
                f"{rec['total_s']:19.4f}"
            )
    lines.append("")
    lines.append(
        f"rollback-depth axis ({DEPTH_PLACES} places, k=1, ckpt at 10):"
    )
    lines.append("fail@  depth  restore total(s)  reconstruct total(s)")
    for fail_at in DEPTH_FAIL_AT:
        rec = depth[(fail_at, "reconstruct")]
        cls = depth[(fail_at, "checkpoint")]
        lines.append(
            f"{fail_at:5d}  {fail_at - INTERVAL:5d}  {cls['total_s']:16.4f}  "
            f"{rec['total_s']:19.4f}"
        )
    rec_mid = depth[(FAIL_AT, "reconstruct")]
    lines.append(
        f"equal zero-loss protection: classic ckpt-every-iteration total "
        f"{equal_protection['total_s']:.4f}s vs reconstruct "
        f"{rec_mid['total_s']:.4f}s"
    )

    row_keys = [
        f"p{places}:k{k}" for places in PLACES_AXIS for k in FAILURES_AXIS
    ]
    columns = (
        "reconstruct_s", "redundancy_s", "checkpoint_s",
        "reconstructed_partitions", "rolled_back_iterations", "total_s",
    )
    series = {}
    for name in columns:
        series[f"reconstruct:{name}"] = [
            burst[(p, k, "reconstruct")][name]
            for p in PLACES_AXIS for k in FAILURES_AXIS
        ]
    series["restore:total_s"] = [
        burst[(p, k, "checkpoint")]["total_s"]
        for p in PLACES_AXIS for k in FAILURES_AXIS
    ]
    series["restore:rolled_back_iterations"] = [
        burst[(p, k, "checkpoint")]["rolled_back_iterations"]
        for p in PLACES_AXIS for k in FAILURES_AXIS
    ]
    csv = figures.write_csv(
        results_path("reconstruct.csv"), row_keys, series, x_name="places:k"
    )
    lines.append(f"series written to {csv}")
    emit("Checkpoint-free recovery — reconstruct vs restore", "\n".join(lines))

    def strip(cell: dict) -> dict:
        return {n: cell[n] for n in cell if n != "solution"}

    bench_json = os.path.join(
        os.path.dirname(results_path("x")), os.pardir, "BENCH_recovery.json"
    )
    with open(os.path.abspath(bench_json), "w", encoding="utf-8") as fh:
        json.dump(
            {
                "config": {
                    "places": PLACES_AXIS, "failures": FAILURES_AXIS,
                    "iterations": ITERATIONS, "interval": INTERVAL,
                    "fail_at": FAIL_AT, "replicas": REPLICAS,
                    "depth_fail_at": DEPTH_FAIL_AT,
                },
                "burst": {
                    f"p{p}:k{k}:{r}": strip(cell)
                    for (p, k, r), cell in burst.items()
                },
                "depth": {
                    f"fail{f}:{r}": strip(cell)
                    for (f, r), cell in depth.items()
                },
                "equal_protection_interval1": strip(equal_protection),
            },
            fh,
            indent=2,
        )

    for places in PLACES_AXIS:
        for k in FAILURES_AXIS:
            rec = burst[(places, k, "reconstruct")]
            cls = burst[(places, k, "checkpoint")]
            # The headline guarantee: no work was lost and the answer is
            # the failure-free one.
            assert rec["reconstructions"] >= 1
            assert rec["rolled_back_iterations"] == 0
            assert rec["restores"] == 0
            assert rec["reconstructed_partitions"] == k
            assert np.allclose(
                rec["solution"], baselines[places], rtol=1e-8, atol=1e-8
            )
            # The classic path really did roll back and re-execute.
            assert cls["rolled_back_iterations"] >= 1
        # Cost scales with lost partitions: more dead places, more repair.
        rk = [burst[(places, k, "reconstruct")]["reconstruct_s"]
              for k in FAILURES_AXIS]
        assert rk[0] < rk[1] < rk[2]

    # Rollback depth: re-executed work grows the restore path's total while
    # the reconstruct path does not even notice where the failure landed.
    cls_totals = [depth[(f, "checkpoint")]["total_s"] for f in DEPTH_FAIL_AT]
    rec_totals = [depth[(f, "reconstruct")]["total_s"] for f in DEPTH_FAIL_AT]
    assert cls_totals[0] < cls_totals[1] < cls_totals[2]
    assert max(rec_totals) - min(rec_totals) < 0.05 * min(rec_totals)
    # The recovery *event* itself is far cheaper than a restore: repairing
    # k partitions beats re-scattering every partition from backups.
    for fail_at in DEPTH_FAIL_AT:
        assert (
            depth[(fail_at, "reconstruct")]["reconstruct_s"]
            < depth[(fail_at, "checkpoint")]["restore_s"]
        )
    # At *equal* protection (zero lost work), continuous redundancy beats
    # classic checkpoint/restart with a checkpoint every iteration.  (At
    # interval 10 the classic path can be cheaper end-to-end on a shallow
    # failure — it simply bought less protection; that tradeoff is the
    # point of the depth table above.)
    assert (
        depth[(FAIL_AT, "reconstruct")]["total_s"]
        < equal_protection["total_s"]
    )
