"""Redundant-state storage for checkpoint-free (ABFT) recovery.

Checkpoint/restart keeps *old* state and rolls the whole computation back
to it.  Reconstruction keeps *current* state redundant instead: after
every iteration the application re-publishes the small dynamic vectors it
cannot recompute (for PCG: the residual ``r`` and search direction ``p``)
to neighbor places through the same tiered
:class:`~repro.resilience.snapshot.DistObjectSnapshot` machinery
checkpoints use, while the large static operands (the matrix row bands
``A``, the right-hand side ``b``, the preconditioner diagonal) are
replicated **once** and merely repaired when a replica's place dies.  On a
failure the survivors' copies rebuild the lost partitions exactly — no
rollback, no lost iterations; the re-solve
``x_J = A_JJ⁻¹ (b_J − r_J − A_JK x_K)`` recovers the one vector that is
*not* replicated (Chen 2011; arXiv:1907.13077 for the multi-failure
generalization this module implements).

The store keeps exactly one committed *state generation*: per-object
snapshots taken atomically (all objects re-published, then the previous
generation deleted), tagged with the iteration they capture.  A failure in
the middle of a refresh leaves the previous generation committed, so
reconstruction always resets to a consistent boundary — at worst one
iteration behind, never a mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.placement import ParityPlacement, ReplicaPlacement
from repro.resilience.snapshot import DistObjectSnapshot, Snapshottable
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import require
from repro.util.versioning import version_token


class ReconstructionStore:
    """Redundant static + per-iteration dynamic state for reconstruction.

    ``replicas`` / ``placement`` configure the same knobs as checkpoint
    replication: *k* in-memory backup copies per partition at the
    placement policy's offsets.  Reconstruction survives any failure burst
    that leaves at least one copy of every published partition — up to
    ``replicas`` simultaneous deaths per placement group, the redundancy
    bound the executor's fallback logic is written against.
    """

    def __init__(
        self,
        runtime: Runtime,
        replicas: int = 1,
        placement: Optional[ReplicaPlacement] = None,
    ):
        require(replicas >= 1, "reconstruction needs at least one replica")
        require(
            not isinstance(placement, ParityPlacement),
            "parity placement stores per-group XOR blocks, which the "
            "redundant-state store cannot incrementally refresh every "
            "iteration; use a replica placement (ring/stride/spread)",
        )
        self.runtime = runtime
        self.replicas = replicas
        self.placement = placement
        self._static: Dict[Snapshottable, DistObjectSnapshot] = {}
        self._state: Dict[Snapshottable, DistObjectSnapshot] = {}
        #: Iteration the committed state generation captures (-1 = none).
        self.state_iteration: int = -1
        #: Logical bytes pushed through redundancy publishing (statics +
        #: every per-iteration refresh) — the bench's overhead axis.
        self.redundancy_bytes: float = 0.0
        #: Keys re-replicated by :meth:`repair_static` across the run.
        self.repaired_keys: int = 0

    # -- static operands ------------------------------------------------------

    def save_static(self, obj: Snapshottable) -> None:
        """Replicate a static (never-mutated) object once.

        Idempotent: a second call for the same object is a no-op — statics
        are repaired, not re-published.
        """
        if obj in self._static:
            return
        self._configure(obj, self.replicas)
        snap = obj.make_snapshot()
        self._static[obj] = snap
        self.redundancy_bytes += snap.total_nbytes

    def static_snapshot(self, obj: Snapshottable) -> DistObjectSnapshot:
        require(obj in self._static, f"{obj!r} has no static snapshot")
        return self._static[obj]

    @property
    def statics_saved(self) -> bool:
        return bool(self._static)

    def repair_static(self, new_group: PlaceGroup) -> int:
        """Re-anchor the statics to *new_group* and restore full redundancy.

        After reconstruction the replaced places hold live payloads again,
        but any snapshot copy that lived on a dead place is gone.  Each
        damaged key is re-saved from its (new) primary place — re-running
        the replica fan-out for exactly the lost copies, so repair cost
        scales with the damage, not with the object.  Returns the number
        of keys re-saved.
        """
        repaired = 0
        for obj, snap in self._static.items():
            snap.rebind_group(new_group)
            damaged = [key for key in snap.saved_keys() if not snap.key_intact(key)]
            if not damaged:
                continue
            heap_key = obj.heap_key
            sub = PlaceGroup([new_group[key] for key in damaged])
            key_of = {new_group[key].id: key for key in damaged}

            def resave(ctx: PlaceContext, snap=snap, heap_key=heap_key, key_of=key_of):
                payload = ctx.heap.get(heap_key)
                snap.save_from(
                    ctx, key_of[ctx.place.id], payload, token=version_token(payload)
                )

            self.runtime.finish_all(sub, resave, label="reconstruct:repair")
            repaired += len(damaged)
        self.repaired_keys += repaired
        return repaired

    # -- per-iteration dynamic state -------------------------------------------

    def publish(
        self, objs: Sequence[Tuple[Snapshottable, Optional[int]]], iteration: int
    ) -> None:
        """Atomically commit a new state generation at *iteration*.

        *objs* is ``[(object, backups)]`` with ``backups=None`` meaning the
        store's replica count and ``0`` meaning primary-copy-only (used for
        ``x``, whose lost partitions are re-*solved*, not re-fetched — the
        local copy exists purely so survivors can reset to the boundary
        without communication).  All new snapshots are taken first; only
        then does the previous generation get deleted, so a failure
        anywhere in between leaves the old generation committed and
        consistent.
        """
        fresh: Dict[Snapshottable, DistObjectSnapshot] = {}
        for obj, backups in objs:
            self._configure(obj, self.replicas if backups is None else backups)
            snap = obj.make_snapshot()
            fresh[obj] = snap
            self.redundancy_bytes += snap.total_nbytes
        previous = self._state
        self._state = fresh
        self.state_iteration = iteration
        for snap in previous.values():
            snap.delete()

    def state_snapshot(self, obj: Snapshottable) -> DistObjectSnapshot:
        require(obj in self._state, f"{obj!r} has no published state")
        return self._state[obj]

    @property
    def ready(self) -> bool:
        """True once statics and at least one state generation committed."""
        return self.state_iteration >= 0 and bool(self._state) and bool(self._static)

    # -- shared -----------------------------------------------------------------

    def _configure(self, obj: Snapshottable, backups: int) -> None:
        obj.snapshot_backups = backups
        if self.placement is not None:
            obj.snapshot_placement = self.placement
        obj.snapshot_stable_fallback = False

    def placement_ok(self) -> bool:
        """Invariant surface: no replica co-resident with its primary."""
        return all(
            snap.placement_ok()
            for snap in list(self._static.values()) + list(self._state.values())
        )

    def fully_redundant(self) -> bool:
        """True while every static copy set is complete (post-repair check)."""
        return all(snap.fully_redundant() for snap in self._static.values())

    def invalidate(self) -> None:
        """Drop every generation after a fallback rollback.

        A checkpoint/restart fallback may shrink the group or roll the
        state behind the published boundary, leaving the committed
        generation (and the statics' group binding) stale.  Invalidation
        empties the store so :attr:`ready` goes false until the app's next
        ``publish_redundant`` rebuilds it — statics included — over the
        post-restore group.
        """
        self.delete()

    def delete(self) -> None:
        """Free every copy (end-of-run cleanup for long-lived runtimes)."""
        for snap in list(self._static.values()) + list(self._state.values()):
            snap.delete()
        self._static.clear()
        self._state.clear()
        self.state_iteration = -1


#: Objects a reconstructable app publishes each iteration, with per-object
#: backup overrides — see :meth:`ReconstructionStore.publish`.
PublishPlan = List[Tuple[Snapshottable, Optional[int]]]
