"""Gaussian Non-negative Matrix Factorization (non-resilient).

GNMF is one of GML's stock demo applications (alongside LinReg, LogReg and
PageRank): factor a sparse non-negative matrix ``V ≈ W·H`` with Lee-Seung
multiplicative updates,

    H ← H ∘ (Wᵀ V) ⊘ (Wᵀ W H)
    W ← W ∘ (V Hᵀ) ⊘ (W (H Hᵀ))

``V`` (m×n, sparse) and the tall factor ``W`` (m×k, dense) are
row-distributed and aligned; the wide factor ``H`` (k×n) is duplicated.
Each update needs two distributed Gram products (all-reduced k×k / k×n
partials) and two fully local row-band products — the communication
pattern GML's GNMF demo exhibits.

This app is an *extension* of the paper's three benchmarks, exercising the
duplicated-matrix and matrix-matrix parts of resilient GML.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.data import GnmfWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.dupmatrix import DupDenseMatrix
from repro.matrix.ops import dist_gram, dist_matmat_dup
from repro.matrix.random import random_dense_block
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class GnmfNonResilient:
    """Plain multiplicative-update NMF over GML."""

    def __init__(
        self,
        runtime: Runtime,
        workload: GnmfWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        m = workload.rows(group.size)
        n, k = workload.cols, workload.rank
        row_blocks = workload.row_blocks(group.size)
        self.V = DistBlockMatrix.make_sparse(runtime, m, n, row_blocks, 1, group)
        self.V.init_random(workload.seed, density=workload.density)
        self.W = DistBlockMatrix.make_dense(runtime, m, k, row_blocks, 1, group)
        self.W.init_random(workload.seed + 1)
        self.H = DupDenseMatrix.make_zero(runtime, k, n, group)
        self.H.init_from(random_dense_block(workload.seed + 2, 0, 0, k, n))

        # Temporaries of the two update rules.
        self.WtV = DupDenseMatrix.make_zero(runtime, k, n, group)
        self.WtW = DupDenseMatrix.make_zero(runtime, k, k, group)
        self.WtWH = DupDenseMatrix.make_zero(runtime, k, n, group)
        self.Ht = DupDenseMatrix.make_zero(runtime, n, k, group)
        self.HHt = DupDenseMatrix.make_zero(runtime, k, k, group)
        self.VHt = DistBlockMatrix.make_dense(runtime, m, k, row_blocks, 1, group)
        self.WHHt = DistBlockMatrix.make_dense(runtime, m, k, row_blocks, 1, group)

    @property
    def places(self) -> PlaceGroup:
        return self._places

    def is_finished(self) -> bool:
        return self.iteration >= self.workload.iterations

    def step(self) -> None:
        """One pair of multiplicative updates."""
        # H update: H = H ∘ (WᵀV) ⊘ (WᵀW H)
        dist_gram(self.W, self.V, self.WtV)
        dist_gram(self.W, self.W, self.WtW)
        self.WtWH.mult(self.WtW, self.H)
        self.H.cell_mult(self.WtV)
        self.H.cell_div(self.WtWH)
        # W update: W = W ∘ (V Hᵀ) ⊘ (W (H Hᵀ))
        self.Ht.transpose_from(self.H)
        dist_matmat_dup(self.V, self.Ht, self.VHt)
        self.HHt.mult(self.H, self.Ht)
        dist_matmat_dup(self.W, self.HHt, self.WHHt)
        self.W.cell_mult(self.VHt)
        self.W.cell_div(self.WHHt)
        self.iteration += 1

    def run(self) -> None:
        """Factor to completion."""
        while not self.is_finished():
            self.step()

    def reconstruction_error(self) -> float:
        """``||V − W·H||_F`` (driver-side; for tests and reporting)."""
        import numpy as np

        V = self.V.to_dense().data
        W = self.W.to_dense().data
        H = self.H.to_array()
        return float(np.linalg.norm(V - W @ H))

    def factors(self):
        """Driver-side copies of ``(W, H)``."""
        return self.W.to_dense().data, self.H.to_array()
