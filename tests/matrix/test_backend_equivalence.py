"""NumPy-vs-scipy backend equivalence for every sparse kernel.

The speed pass backs ``SparseCSR``/``SparseCSC`` kernels with
``scipy.sparse`` array views when available.  The contract is *bit
identity*, not approximate agreement: golden timings and chaos-campaign
parity are asserted byte-for-byte across backends, so every kernel must
produce the exact same arrays on both paths.

Each test runs the same operation once per backend (switching via
``sparse_backend.set_backend``) and compares results with
``np.array_equal`` — no tolerances anywhere.
"""

import numpy as np
import pytest

from repro.matrix import sparse_backend
from repro.matrix.sparse import SparseCSC, SparseCSR

pytestmark = pytest.mark.skipif(
    not sparse_backend.scipy_available(), reason="scipy not installed"
)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    sparse_backend.set_backend(None)


def per_backend(fn):
    """Run *fn* under each backend and return ``(numpy_result, scipy_result)``."""
    sparse_backend.set_backend("numpy")
    a = fn()
    sparse_backend.set_backend("scipy")
    b = fn()
    sparse_backend.set_backend(None)
    return a, b


def coo_fixture(m=13, n=9, nnz=40, seed=7, dups=False):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, m, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.standard_normal(nnz)
    if dups:
        rows = np.concatenate([rows, rows[: nnz // 2]])
        cols = np.concatenate([cols, cols[: nnz // 2]])
        vals = np.concatenate([vals, rng.standard_normal(nnz // 2)])
    return m, n, rows, cols, vals


def assert_same_matrix(a, b):
    assert type(a) is type(b)
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.values, b.values)


@pytest.mark.parametrize("cls", [SparseCSR, SparseCSC])
@pytest.mark.parametrize("dups", [False, True])
def test_from_coo_identical(cls, dups):
    m, n, rows, cols, vals = coo_fixture(dups=dups)
    a, b = per_backend(lambda: cls.from_coo(m, n, rows, cols, vals))
    assert_same_matrix(a, b)


@pytest.mark.parametrize("cls", [SparseCSR, SparseCSC])
def test_from_dense_identical(cls):
    dense = np.random.default_rng(3).standard_normal((8, 11))
    dense[np.abs(dense) < 0.8] = 0.0
    a, b = per_backend(lambda: cls.from_dense(dense))
    assert_same_matrix(a, b)
    assert np.array_equal(a.to_dense(), dense)


@pytest.mark.parametrize("cls", [SparseCSR, SparseCSC])
def test_spmv_and_spmv_t_identical(cls):
    m, n, rows, cols, vals = coo_fixture()
    x_n = np.random.default_rng(11).standard_normal(n)
    x_m = np.random.default_rng(12).standard_normal(m)

    def run():
        mat = cls.from_coo(m, n, rows, cols, vals)
        return mat.spmv(x_n), mat.spmv_t(x_m)

    (y_a, z_a), (y_b, z_b) = per_backend(run)
    assert np.array_equal(y_a, y_b)
    assert np.array_equal(z_a, z_b)


def test_matmat_kernels_identical():
    m, n, rows, cols, vals = coo_fixture()
    rhs = np.random.default_rng(13).standard_normal((n, 4))
    lhs = np.random.default_rng(14).standard_normal((m, 4))

    def run():
        mat = SparseCSR.from_coo(m, n, rows, cols, vals)
        return mat.matmat(rhs), mat.t_matmat(lhs)

    (p_a, q_a), (p_b, q_b) = per_backend(run)
    assert np.array_equal(p_a, p_b)
    assert np.array_equal(q_a, q_b)


def test_conversions_identical():
    m, n, rows, cols, vals = coo_fixture()

    def run():
        mat = SparseCSR.from_coo(m, n, rows, cols, vals)
        return mat.transpose(), mat.to_csc(), mat.to_csc().to_csr()

    (t_a, c_a, r_a), (t_b, c_b, r_b) = per_backend(run)
    assert_same_matrix(t_a, t_b)
    assert_same_matrix(c_a, c_b)
    assert_same_matrix(r_a, r_b)


@pytest.mark.parametrize("cls", [SparseCSR, SparseCSC])
def test_region_ops_identical(cls):
    m, n, rows, cols, vals = coo_fixture(m=16, n=12)

    def run():
        mat = cls.from_coo(m, n, rows, cols, vals)
        return mat.count_nnz_region(2, 11, 1, 8), mat.sub_matrix(2, 11, 1, 8)

    (cnt_a, sub_a), (cnt_b, sub_b) = per_backend(run)
    assert cnt_a == cnt_b
    assert_same_matrix(sub_a, sub_b)


def test_stacking_identical():
    def run():
        tiles = [
            [
                SparseCSR.from_coo(4, 3, *coo_fixture(4, 3, 6, seed=s)[2:])
                for s in (1, 2)
            ],
            [
                SparseCSR.from_coo(5, 3, *coo_fixture(5, 3, 7, seed=s)[2:])
                for s in (3, 4)
            ],
        ]
        return SparseCSR.assemble(tiles)

    a, b = per_backend(run)
    assert_same_matrix(a, b)


def test_cross_backend_matrices_interoperate():
    """A matrix built on one backend computes identically on the other."""
    m, n, rows, cols, vals = coo_fixture()
    x = np.random.default_rng(15).standard_normal(n)
    sparse_backend.set_backend("numpy")
    built_numpy = SparseCSR.from_coo(m, n, rows, cols, vals)
    y_numpy = built_numpy.spmv(x)
    sparse_backend.set_backend("scipy")
    assert np.array_equal(built_numpy.spmv(x), y_numpy)


def test_duplicate_policy_sums_matching_scipy():
    """Duplicates are summed — same policy as scipy's COO coalescing —
    and byte-identically on both backends (the deterministic path)."""
    rows = [0, 0, 1, 0]
    cols = [1, 1, 2, 1]
    vals = [0.1, 0.2, 5.0, 0.4]

    def run():
        return SparseCSR.from_coo(3, 3, rows, cols, vals)

    a, b = per_backend(run)
    assert_same_matrix(a, b)
    # First-occurrence summation order: ((0.1 + 0.2) + 0.4), bit-exactly.
    assert a.to_dense()[0, 1] == (0.1 + 0.2) + 0.4
    assert a.nnz == 2
    sp = sparse_backend.scipy_module()
    coalesced = sp.coo_array((vals, (rows, cols)), shape=(3, 3)).tocsr()
    assert np.allclose(a.to_dense(), coalesced.toarray())


@pytest.mark.parametrize("dups", [False, True])
def test_from_coo_large_build_identical(dups):
    """Builds above ``_SCIPY_BUILD_MIN`` take scipy's coo→csr conversion
    (with the duplicate-entry guard); the result must still be
    byte-identical to the NumPy path."""
    from repro.matrix.sparse import _SCIPY_BUILD_MIN

    n = 4096
    nnz = _SCIPY_BUILD_MIN + 1000
    rng = np.random.default_rng(21)
    if dups:
        rows = rng.integers(0, n, size=nnz)
        cols = rng.integers(0, n, size=nnz)  # collisions guaranteed by birthday
        rows[1], cols[1] = rows[0], cols[0]  # ...and one forced duplicate
    else:
        flat = rng.choice(n * n, size=nnz, replace=False)
        rows, cols = flat // n, flat % n
    vals = rng.standard_normal(nnz)
    a, b = per_backend(lambda: SparseCSR.from_coo(n, n, rows, cols, vals))
    assert_same_matrix(a, b)


def test_backend_switch_validation():
    with pytest.raises(ValueError):
        sparse_backend.set_backend("cupy")
    assert sparse_backend.set_backend("numpy") == "numpy"
    assert sparse_backend.use_scipy() is False
    assert sparse_backend.set_backend(None) in ("numpy", "scipy")
