"""Linear Regression (non-resilient) — GML's LinReg benchmark.

Trains a ridge-regression model ``(XᵀX + λI) w = Xᵀy`` with the conjugate
gradient method, the algorithm GML's LinearRegression demo uses.  The
training examples are a dense ``DistBlockMatrix`` (weak scaling: a fixed
number of examples per place); the model and CG direction vectors are
``DupVector``s; matvec intermediates are ``DistVector``s aligned to the
matrix's row layout.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.data import RegressionWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.ops import dist_block_t_matvec
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class LinRegNonResilient:
    """Plain CG linear regression over GML."""

    def __init__(
        self,
        runtime: Runtime,
        workload: RegressionWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        n_examples = workload.examples(group.size)
        d = workload.features
        self.X = DistBlockMatrix.make_dense(
            runtime, n_examples, d, workload.row_blocks(group.size), 1, group
        ).init_random(workload.seed)
        row_part = self.X.aligned_row_partition()
        self.y = DistVector.make(runtime, n_examples, group, row_part)
        self.y.init_random(workload.seed, tag=1)

        # CG state.
        self.w = DupVector.make(runtime, d, group)
        self.r = DupVector.make(runtime, d, group)
        self.p = DupVector.make(runtime, d, group)
        self.q = DupVector.make(runtime, d, group)
        self.Xp = DistVector.make(runtime, n_examples, group, row_part)
        self._start_cg()

    @property
    def places(self) -> PlaceGroup:
        return self._places

    def _start_cg(self) -> None:
        # r = Xᵀy - (XᵀX + λI)·0 = Xᵀy;  p = r.
        dist_block_t_matvec(self.X, self.y, self.r)
        self.p.copy_from(self.r)
        self.norm_r2 = self.r.dot(self.r)
        self.initial_norm_r2 = self.norm_r2

    def is_finished(self) -> bool:
        if self.iteration >= self.workload.iterations:
            return True
        tol = self.workload.tolerance
        return tol > 0 and self.norm_r2 <= (tol * tol) * self.initial_norm_r2

    def step(self) -> None:
        """One CG iteration."""
        lam = self.workload.ridge_lambda
        # q = Xᵀ(X p) + λ p
        self.Xp.mult(self.X, self.p)
        dist_block_t_matvec(self.X, self.Xp, self.q)
        self.q.axpy(lam, self.p)
        # Line search along p.
        alpha = self.norm_r2 / self.p.dot(self.q)
        self.w.axpy(alpha, self.p)
        self.r.axpy(-alpha, self.q)
        new_r2 = self.r.dot(self.r)
        beta = new_r2 / self.norm_r2 if self.norm_r2 else 0.0
        # p = r + β p
        self.p.scale(beta)
        self.p.cell_add(self.r)
        self.norm_r2 = new_r2
        self.iteration += 1

    def run(self) -> None:
        """Train to completion."""
        while not self.is_finished():
            self.step()

    def model(self):
        """The learned weight vector (driver-side copy)."""
        return self.w.to_array()
