"""The multi-job cluster service: one pool, many tenants.

:class:`ClusterService` runs a seeded stream of mixed jobs against a
single shared :class:`~repro.runtime.pool.PlacePool`.  The control loop is
a discrete-event simulation over *virtual* time — arrivals, job
completions and pool-level fault bursts are heap-ordered events — while
each admitted job executes eagerly inside ``runtime.job_context``: the
lease's driver place stands in for place zero, the tenant's scoped
injector and detector are swapped in, and per-place virtual clocks make
the jobs overlap in virtual time even though the interpreter runs them one
after another.  Shared contention (the place-zero ledger, the stable-
storage disk) is still charged on the common engine resources, which is
exactly the part of multi-tenancy that should not be independent.

Blast-radius confinement is checked, not assumed: every job records which
places died while it was the active tenant, and the report counts a
cross-tenant abort whenever a job fails without any of its own members
having died — that counter must be zero for a correct pool.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.calibration import regression_cost
from repro.resilience.executor import (
    RECOVERY_MODES,
    IterativeExecutor,
    RestoreMode,
)
from repro.resilience.placement import make_placement
from repro.resilience.store import AppResilientStore
from repro.runtime.cost import CostModel
from repro.runtime.detector import PhiAccrualDetector
from repro.runtime.exceptions import (
    DataLossError,
    DeadPlaceException,
    MultipleException,
)
from repro.runtime.factory import make_runtime
from repro.runtime.failure import LeaseScopedInjector, TransientFaultModel
from repro.runtime.pool import DEDICATED, ECONOMICS_MODES, PlaceLease
from repro.service.admission import AdmissionController, JobQueue
from repro.service.faults import PoolFaultEvent, ServiceFaultPlan
from repro.service.jobs import (
    SERVICE_APPS,
    BaselineCache,
    JobResult,
    JobSpec,
    generate_jobs,
)
from repro.util.validation import check_positive, require

#: Event priorities at equal virtual time: bursts strike first, finished
#: leases free their places next, then healed places rejoin the pool, and
#: only then do new arrivals queue (so an arrival sees maximum capacity).
_PRI_FAULT, _PRI_COMPLETION, _PRI_REPAIR, _PRI_ARRIVAL = 0, 1, 2, 3


class _RepairEvent:
    """A healed place rejoining the pool at its seeded repair time."""

    __slots__ = ("place_id",)

    def __init__(self, place_id: int):
        self.place_id = place_id


@dataclass(frozen=True)
class ServiceConfig:
    """One service run: pool shape, stream shape, chaos knobs."""

    places: int = 17  # place 0 (coordinator) + 16 workers
    reserve: int = 4
    economics: str = "pooled"
    n_jobs: int = 20
    seed: int = 0
    #: Mean job arrivals per virtual second (Poisson process).
    arrival_rate: float = 1.0
    apps: Tuple[str, ...] = ("linreg", "logreg", "pagerank", "gnmf")
    min_places: int = 2
    max_places: int = 6
    min_iterations: int = 4
    max_iterations: int = 12
    zipf_a: float = 2.2
    checkpoint_interval: int = 3
    #: Reserve places committed per job under ``dedicated`` economics.
    dedicated_spares: int = 1
    replicas: int = 2
    placement: str = "spread"
    stable_fallback: bool = False
    restore_mode: str = "replace-redundant"
    checkpoint_mode: str = "blocking"
    #: Recovery mode for CG jobs ("reconstruct" = checkpoint-free ABFT
    #: recovery; "checkpoint" = the classic rollback path).  Only CG
    #: implements the reconstruction protocol, so other apps always run
    #: under checkpoint/restart regardless of this knob.
    cg_recovery: str = "reconstruct"
    #: "calibrated" charges the regression cluster profile so latency and
    #: throughput are meaningful; "zero" runs in zero virtual time (pure
    #: invariant checking).
    cost_profile: str = "calibrated"
    # Chaos knobs.
    crash_rate: float = 0.0
    pair_rate: float = 0.0
    rack_rate: float = 0.0
    rack_size: int = 4
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    detect_timeout: float = 0.0
    #: Mean time to repair (exponential, seeded per place): killed places
    #: rejoin the pool's free set after their repair delay.  0 disables
    #: healing — dead places stay dead, the pool only ever shrinks.
    repair_mttr: float = 0.0
    max_queue: Optional[int] = None
    max_restore_attempts: int = 10

    def __post_init__(self) -> None:
        require(self.places >= 2, "need at least a coordinator and one worker")
        require(self.reserve >= 0, "reserve must be >= 0")
        require(
            self.economics in ECONOMICS_MODES,
            f"economics must be one of {ECONOMICS_MODES}",
        )
        check_positive(self.n_jobs, "n_jobs")
        require(self.arrival_rate > 0, "arrival_rate must be > 0")
        require(
            self.max_places <= self.places - 1,
            "max_places cannot exceed the worker count (places - 1)",
        )
        require(
            self.cost_profile in ("calibrated", "zero"),
            "cost_profile must be 'calibrated' or 'zero'",
        )
        require(
            self.cg_recovery in RECOVERY_MODES,
            f"cg_recovery must be one of {RECOVERY_MODES}",
        )
        require(self.repair_mttr >= 0, "repair_mttr must be >= 0")
        # Fail fast on a bad placement spec, and on parity double-paying.
        from repro.resilience.placement import ParityPlacement

        if isinstance(make_placement(self.placement), ParityPlacement):
            require(
                self.replicas <= 1,
                "placement=parity replaces per-key replicas with one XOR "
                "parity block per group; configure replicas=1 (or shrink "
                "the group via parity:g)",
            )
        for app in self.apps:
            require(app in SERVICE_APPS, f"unknown app {app!r}")

    def cost(self) -> CostModel:
        return regression_cost() if self.cost_profile == "calibrated" else CostModel.zero()


@dataclass
class ServiceReport:
    """Per-service metrics over one stream (ISSUE 6's report surface)."""

    config: ServiceConfig
    jobs: List[JobResult] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    makespan: float = 0.0
    #: Completed jobs per virtual second of makespan.
    throughput: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    mean_queue_wait: float = 0.0
    #: Time-weighted mean fraction of the reserve that was out on loan
    #: (or dead), sampled at event boundaries.
    reserve_mean_occupancy: float = 0.0
    reserve_peak_claimed: int = 0
    reserve_size: int = 0
    cross_tenant_aborts: int = 0
    total_kills: int = 0
    borrows: int = 0
    #: Killed places healed back into the pool (``repair_mttr`` > 0).
    repaired_places: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for j in self.jobs if j.status == "completed")

    @property
    def data_loss(self) -> int:
        return sum(1 for j in self.jobs if j.status == "data-loss")

    @property
    def aborted(self) -> int:
        return sum(1 for j in self.jobs if j.status == "aborted")

    @property
    def rejected(self) -> int:
        return sum(1 for j in self.jobs if j.status == "rejected")

    @property
    def admitted(self) -> int:
        return sum(1 for j in self.jobs if j.status != "rejected")

    @property
    def survival_rate(self) -> float:
        """Completed share of admitted jobs."""
        return self.completed / self.admitted if self.admitted else 0.0

    @property
    def reconstructions(self) -> int:
        """Checkpoint-free recoveries across the stream (CG tenants)."""
        return sum(j.reconstructions for j in self.jobs)

    @property
    def degraded(self) -> int:
        """Completed jobs that shrank below their requested width."""
        return sum(
            1
            for j in self.jobs
            if j.status == "completed" and j.final_places < j.places
        )

    def to_dict(self) -> Dict:
        """JSON-ready summary (the BENCH_service.json row shape)."""
        return {
            "economics": self.config.economics,
            "reserve_size": self.reserve_size,
            "n_jobs": self.config.n_jobs,
            "arrival_rate": self.config.arrival_rate,
            "completed": self.completed,
            "data_loss": self.data_loss,
            "aborted": self.aborted,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "survival_rate": self.survival_rate,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "mean_queue_wait": self.mean_queue_wait,
            "reserve_mean_occupancy": self.reserve_mean_occupancy,
            "reserve_peak_claimed": self.reserve_peak_claimed,
            "cross_tenant_aborts": self.cross_tenant_aborts,
            "violations": len(self.violations),
            "total_kills": self.total_kills,
            "borrows": self.borrows,
            "reconstructions": self.reconstructions,
            "repaired_places": self.repaired_places,
        }

    def summary(self) -> str:
        lines = [
            f"service: {self.config.n_jobs} jobs, "
            f"{self.config.places - 1} workers + {self.reserve_size} reserve "
            f"({self.config.economics})",
            f"  completed {self.completed}  data-loss {self.data_loss}  "
            f"aborted {self.aborted}  rejected {self.rejected}  "
            f"(survival {self.survival_rate:.0%})",
            f"  makespan {self.makespan:.3f}s  "
            f"throughput {self.throughput:.3f} jobs/s",
            f"  latency p50/p95/p99 {self.latency_p50:.3f}/"
            f"{self.latency_p95:.3f}/{self.latency_p99:.3f}s  "
            f"queue wait {self.mean_queue_wait:.3f}s",
            f"  reserve occupancy {self.reserve_mean_occupancy:.0%} "
            f"(peak {self.reserve_peak_claimed}/{self.reserve_size})  "
            f"kills {self.total_kills}  borrows {self.borrows}  "
            f"repaired {self.repaired_places}",
            f"  cross-tenant aborts {self.cross_tenant_aborts}  "
            f"violations {len(self.violations)}",
        ]
        return "\n".join(lines)


class ClusterService:
    """Runs a job stream against one shared pool (see module docstring)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.runtime = make_runtime(
            config.places,
            cost=config.cost(),
            resilient=True,
            spares=config.reserve,
            faults=(
                TransientFaultModel(
                    drop_rate=config.drop_rate,
                    dup_rate=config.dup_rate,
                    seed=config.seed + 77,
                )
                if (config.drop_rate or config.dup_rate)
                else None
            ),
        )
        self.pool = self.runtime.pool
        self.queue = JobQueue(max_depth=config.max_queue)
        self.admission = AdmissionController(self.pool, config.economics)
        self.baselines = BaselineCache()
        self.jobs = generate_jobs(
            config.n_jobs,
            seed=config.seed,
            arrival_rate=config.arrival_rate,
            apps=config.apps,
            min_places=config.min_places,
            max_places=config.max_places,
            min_iterations=config.min_iterations,
            max_iterations=config.max_iterations,
            checkpoint_interval=config.checkpoint_interval,
            zipf_a=config.zipf_a,
            dedicated_spares=config.dedicated_spares,
        )
        horizon = 2.0 * self.jobs[-1].arrival + 10.0
        self.plan = ServiceFaultPlan(
            seed=config.seed,
            total_places=config.places + config.reserve,
            horizon=horizon,
            crash_rate=config.crash_rate,
            pair_rate=config.pair_rate,
            rack_rate=config.rack_rate,
            rack_size=config.rack_size,
        )
        self._results: Dict[int, JobResult] = {}
        #: Dead places with a repair event already in flight, and how many
        #: times each place has been repaired (the seed axis, so a place
        #: that dies again after healing draws a fresh repair delay).
        self._repairs_scheduled: set = set()
        self._repair_counts: Dict[int, int] = {}

    # -- the event loop ----------------------------------------------------

    def run(self) -> ServiceReport:
        rt = self.runtime
        heap: List[Tuple[float, int, int, object]] = []
        seq = 0
        for job in self.jobs:
            heapq.heappush(heap, (job.arrival, _PRI_ARRIVAL, seq, job))
            seq += 1
        for event in self.plan.pool_events:
            heapq.heappush(heap, (event.time, _PRI_FAULT, seq, event))
            seq += 1

        occupancy_area = 0.0
        last_t = 0.0
        t = 0.0
        while heap:
            t, _pri, _seq, payload = heapq.heappop(heap)
            occupancy_area += (t - last_t) * (
                self.pool.reserve_size - self.pool.reserve_remaining
            )
            last_t = t
            if isinstance(payload, PoolFaultEvent):
                self._strike(payload)
            elif isinstance(payload, _RepairEvent):
                self._heal(payload.place_id)
            elif isinstance(payload, PlaceLease):
                self.pool.release(payload)
            else:  # arrival
                job = payload
                if not self.queue.offer(job):
                    self._results[job.job_id] = JobResult(
                        job_id=job.job_id,
                        app=job.app,
                        places=job.places,
                        status="rejected",
                        arrival=job.arrival,
                        detail="queue full",
                    )
                    continue
            while True:
                admitted = self.admission.pop_admissible(self.queue)
                if admitted is None:
                    break
                finished_at, lease = self._run_job(admitted, now=t)
                heapq.heappush(heap, (finished_at, _PRI_COMPLETION, seq, lease))
                seq += 1
            seq = self._schedule_repairs(heap, seq, now=t)

        # Jobs still queued can never start (the pool shrank under them or
        # they were always bigger than the free set): starvation, reported
        # as a rejection so every stream entry has an outcome.
        while len(self.queue):
            job = self.queue.pop()
            self._results[job.job_id] = JobResult(
                job_id=job.job_id,
                app=job.app,
                places=job.places,
                status="rejected",
                arrival=job.arrival,
                detail="starved: pool can no longer host this job",
            )

        return self._build_report(makespan=t, occupancy_area=occupancy_area)

    # -- event handlers ----------------------------------------------------

    def _strike(self, event: PoolFaultEvent) -> None:
        """Apply a correlated burst to victims no tenant owns.

        Leased victims are not touched here: the owning tenant's scoped
        injector got them as lease-local timed kills at admission, so the
        kill fires inside the owner's run (where its recovery is defined)
        and never while another tenant is the active job context.
        """
        rt = self.runtime
        for victim in event.victims:
            if not rt.is_alive(victim):
                continue
            lease = self.pool.lease_of(victim)
            if lease is not None:
                continue
            rt.kill(victim)

    def _schedule_repairs(self, heap: List, seq: int, now: float) -> int:
        """Queue a repair event for every newly-dead place (MTTR > 0).

        Each place draws its delay from a seed-derived stream keyed by
        (place, repair count), so the schedule is deterministic in the
        config seed yet a place that dies again after healing draws a
        fresh delay.  Repairs are anchored to the *death* time (clamped to
        now: a job's deaths are only observed once it returns).
        """
        mttr = self.config.repair_mttr
        if mttr <= 0:
            return seq
        rt = self.runtime
        for pid in sorted(rt.dead_ids()):
            if pid in self._repairs_scheduled:
                continue
            self._repairs_scheduled.add(pid)
            count = self._repair_counts.get(pid, 0)
            delay = float(
                np.random.default_rng(
                    [self.config.seed, 31, pid, count]
                ).exponential(mttr)
            )
            died = rt.death_time(pid)
            at = max(now, (died if died is not None else now) + delay)
            heapq.heappush(heap, (at, _PRI_REPAIR, seq, _RepairEvent(pid)))
            seq += 1
        return seq

    def _heal(self, place_id: int) -> None:
        """A repair event fired: revive the place back into the pool."""
        rt = self.runtime
        self._repairs_scheduled.discard(place_id)
        if rt.is_alive(place_id):
            return
        self._repair_counts[place_id] = self._repair_counts.get(place_id, 0) + 1
        rt.revive(place_id)

    def _run_job(self, job: JobSpec, now: float) -> Tuple[float, PlaceLease]:
        """Admit and eagerly execute one job inside its lease."""
        rt = self.runtime
        cfg = self.config
        lease = self.pool.lease(
            size=job.places,
            name=f"job-{job.job_id}",
            economics=cfg.economics,
            dedicated_spares=(
                job.dedicated_spares if cfg.economics == DEDICATED else 0
            ),
        )
        # The job starts at its admission time: members cannot be in the
        # virtual past of the stream that scheduled them.
        for pid in lease.member_ids:
            rt.clock.set_at_least(pid, now)

        kills = self.plan.kills_for_job(job, lease)
        condemned = {k.place_id for k in kills}
        for kill in self.plan.straddling_kills(lease, now):
            if kill.place_id not in condemned:
                kills.append(kill)
                condemned.add(kill.place_id)
        injector = LeaseScopedInjector(rt, lease, kills)
        detector = None
        if cfg.detect_timeout > 0:
            detector = PhiAccrualDetector(
                rt,
                detect_timeout=cfg.detect_timeout,
                places=sorted(lease.member_ids - {lease.driver.id}),
                start_time=now,
            )

        result = JobResult(
            job_id=job.job_id,
            app=job.app,
            places=job.places,
            status="completed",
            arrival=job.arrival,
            admitted=now,
            queue_wait=now - job.arrival,
        )
        dead_before = set(rt.dead_ids())
        _, res_cls, wl_factory, result_of = SERVICE_APPS[job.app]
        with rt.job_context(lease, injector=injector, detector=detector):
            try:
                app = res_cls(rt, wl_factory(job.iterations), group=lease.group())
                store = AppResilientStore(
                    rt,
                    replicas=cfg.replicas,
                    placement=make_placement(cfg.placement),
                    stable_fallback=cfg.stable_fallback,
                )
                recovery = (
                    cfg.cg_recovery if job.app == "cg" else "checkpoint"
                )
                report = IterativeExecutor(
                    rt,
                    app,
                    store=store,
                    checkpoint_interval=job.checkpoint_interval,
                    mode=RestoreMode(cfg.restore_mode),
                    checkpoint_mode=cfg.checkpoint_mode,
                    max_restore_attempts=cfg.max_restore_attempts,
                    detector=detector,
                    lease=lease,
                    replicas=cfg.replicas,
                    placement=make_placement(cfg.placement),
                    recovery=recovery,
                ).run()
                result.restores = report.restores
                result.reconstructions = report.reconstructions
                result.failures_observed = report.failures_observed
                result.final_places = report.final_group_size
                baseline = self.baselines.get(job.app, job.places, job.iterations)
                answer = np.asarray(result_of(app))
                if report.final_group_size == job.places:
                    # Replace-path recovery preserves the group width, so
                    # the rerun is bit-identical to the failure-free run.
                    result.result_ok = bool(
                        np.allclose(answer, baseline, rtol=1e-8, atol=1e-10)
                    )
                else:
                    # A shrink restore reruns on fewer places: the per-place
                    # partial sums regroup, and iterative methods (CG above
                    # all) amplify that rounding drift with the condition
                    # number as the residual shrinks.  The answer is the
                    # same algorithmic fixed point, just not the same bits.
                    result.result_ok = bool(
                        np.allclose(answer, baseline, rtol=1e-4, atol=1e-8)
                    )
            except DataLossError as exc:
                result.status = "data-loss"
                result.detail = str(exc)
            except (DeadPlaceException, MultipleException) as exc:
                # A failure before the executor's recovery loop could see
                # it (object construction) is unrecoverable-by-design:
                # nothing was checkpointed yet.  Anything else escaping is
                # a scoping bug the report will flag.
                foreign = [p for p in exc.places if p not in lease.ever_ids]
                if foreign:
                    result.status = "aborted"
                    result.detail = f"failure leaked from places {foreign}"
                else:
                    result.status = "data-loss"
                    result.detail = f"failed during construction: {exc}"
            finished = rt.clock.now(lease.driver.id)
        dead_during = sorted(set(rt.dead_ids()) - dead_before)
        result.kills_during_run = dead_during
        result.spares_claimed = lease.spares_claimed
        result.borrows = lease.borrows
        result.finished = finished
        result.latency = finished - job.arrival
        self._results[job.job_id] = result
        return finished, lease

    # -- report ------------------------------------------------------------

    def _check_invariants(self, report: ServiceReport) -> None:
        transients_on = bool(self.config.drop_rate or self.config.dup_rate)
        for res in sorted(self._results.values(), key=lambda r: r.job_id):
            lease_ids = self._lease_ever_ids(res.job_id)
            if res.status == "rejected":
                continue
            leaked = [p for p in res.kills_during_run if p not in lease_ids]
            if leaked:
                report.violations.append(
                    f"job {res.job_id}: places {leaked} died during its run "
                    f"but belong to no lease of its tenancy"
                )
            if res.status == "aborted":
                report.cross_tenant_aborts += 1
                report.violations.append(
                    f"job {res.job_id}: aborted ({res.detail})"
                )
            elif res.status == "data-loss":
                own_deaths = [p for p in res.kills_during_run if p in lease_ids]
                if not own_deaths and not transients_on:
                    report.cross_tenant_aborts += 1
                    report.violations.append(
                        f"job {res.job_id}: failed with none of its own "
                        f"members dead — a foreign failure reached it"
                    )
            elif res.status == "completed" and res.result_ok is False:
                report.violations.append(
                    f"job {res.job_id}: converged result differs from the "
                    f"failure-free baseline"
                )

    def _lease_ever_ids(self, job_id: int) -> set:
        for lease in self.pool.leases:
            if lease.name == f"job-{job_id}":
                return set(lease.ever_ids)
        return set()

    def _build_report(self, makespan: float, occupancy_area: float) -> ServiceReport:
        report = ServiceReport(config=self.config)
        report.jobs = [
            self._results[jid] for jid in sorted(self._results)
        ]
        report.reserve_size = self.pool.reserve_size
        report.reserve_peak_claimed = self.pool.reserve_peak_claimed
        report.total_kills = self.runtime.stats.kills
        report.repaired_places = self.runtime.stats.repairs
        report.borrows = sum(j.borrows for j in report.jobs)
        # Completions can land past the last heap event's time only via
        # the completion events themselves, which are in the heap — so
        # *makespan* is the last popped event time.
        report.makespan = makespan
        if makespan > 0:
            report.throughput = report.completed / makespan
            report.reserve_mean_occupancy = (
                occupancy_area / (makespan * self.pool.reserve_size)
                if self.pool.reserve_size
                else 0.0
            )
        latencies = [j.latency for j in report.jobs if j.status == "completed"]
        if latencies:
            report.latency_p50 = float(np.percentile(latencies, 50))
            report.latency_p95 = float(np.percentile(latencies, 95))
            report.latency_p99 = float(np.percentile(latencies, 99))
        waits = [
            j.queue_wait for j in report.jobs if j.status not in ("rejected",)
        ]
        if waits:
            report.mean_queue_wait = float(np.mean(waits))
        self._check_invariants(report)
        return report


def run_service(config: ServiceConfig) -> ServiceReport:
    """Convenience: build and run a :class:`ClusterService`."""
    return ClusterService(config).run()


def _rate_on_common_jobs(
    a: ServiceReport, b: ServiceReport, passed
) -> Tuple[float, float]:
    """Fraction of jobs admitted in *both* runs for which *passed* holds.

    The honest way to compare spare economics on one seed: per-job kill
    schedules are identical across modes, but admission differs (dedicated
    economics throttles the stream when the reserve is committed), and a
    mode must not look "safer" merely because it rejected the jobs whose
    schedules were unsurvivable.
    """
    admitted_a = {j.job_id for j in a.jobs if j.status != "rejected"}
    admitted_b = {j.job_id for j in b.jobs if j.status != "rejected"}
    common = admitted_a & admitted_b
    if not common:
        return 0.0, 0.0

    def rate(report: ServiceReport) -> float:
        done = sum(
            1 for j in report.jobs if j.job_id in common and passed(j)
        )
        return done / len(common)

    return rate(a), rate(b)


def survival_on_common_jobs(
    a: ServiceReport, b: ServiceReport
) -> Tuple[float, float]:
    """Completion rates of two runs over the jobs admitted in both."""
    return _rate_on_common_jobs(a, b, lambda j: j.status == "completed")


def full_width_on_common_jobs(
    a: ServiceReport, b: ServiceReport
) -> Tuple[float, float]:
    """Undegraded-completion rates over the jobs admitted in both.

    A job that shrank still *survives*, so bare survival is insensitive to
    spare capacity — what the reserve actually buys is completing at full
    width.  This is the metric the reserve-sizing sweep must hold equal.
    """
    return _rate_on_common_jobs(
        a,
        b,
        lambda j: j.status == "completed" and j.final_places >= j.places,
    )
