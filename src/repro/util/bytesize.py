"""Estimate the on-the-wire size of payloads moved between places.

The virtual-time cost model charges communication by byte volume.  Payloads
in this reproduction are NumPy arrays, the single-place matrix classes, and
small containers of those; this module computes their serialized size the
way the X10 sockets transport would (raw element bytes plus small framing).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Fixed framing overhead per serialized object (message header, type tag).
FRAMING_BYTES = 64


def payload_nbytes(obj: Any) -> int:
    """Return the estimated serialized size of *obj* in bytes.

    Supports ``None``, numbers, strings, NumPy arrays, and (possibly nested)
    lists / tuples / dicts of those, plus any object exposing a ``nbytes``
    attribute or ``payload_nbytes()`` method (the single-place matrix
    classes do).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + FRAMING_BYTES
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8")) + FRAMING_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return FRAMING_BYTES + sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return FRAMING_BYTES + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    method = getattr(obj, "payload_nbytes", None)
    if callable(method):
        return int(method()) + FRAMING_BYTES
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + FRAMING_BYTES
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")
