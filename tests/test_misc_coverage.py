"""Coverage for smaller public surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.runtime import CostModel, Place, PlaceGroup, Runtime
from repro.runtime.comm import tree_reduce


class TestRuntimeAtCosts:
    def test_at_charges_arg_and_ret_bytes(self):
        rt = Runtime(2, cost=CostModel(latency=1.0, byte_time=1.0))
        rt.at(Place(1), lambda ctx: None, arg_bytes=3, ret_bytes=2)
        # arg message (1+3) to place 1, ret message (1+2) back.
        assert rt.now() == pytest.approx(7.0)

    def test_at_driver_is_free(self):
        rt = Runtime(2, cost=CostModel.unit())
        rt.at(Place(0), lambda ctx: None)
        assert rt.now() == 0.0

    def test_barrier_syncs_driver_too(self):
        rt = Runtime(3, cost=CostModel(flop_time=1.0))
        rt.clock.advance(2, 9.0)
        rt.barrier(rt.world)
        assert rt.now() == 9.0

    def test_barrier_skips_dead(self):
        rt = Runtime(3, cost=CostModel.zero())
        rt.clock.advance(2, 9.0)
        rt.kill(2)
        assert rt.barrier(rt.world) == 0.0


class TestCollectiveSubgroups:
    def test_reduce_on_noncontiguous_subgroup(self):
        rt = Runtime(6, cost=CostModel(latency=1.0))
        group = PlaceGroup.of_ids([1, 3, 5])
        tree_reduce(rt, group, root_index=1, nbytes=0)
        assert rt.stats.finishes == 1
        # Only subgroup members (plus the driver's join) advanced.
        assert rt.clock.now(2) == 0.0

    def test_finish_over_group_excluding_driver(self):
        rt = Runtime(4, cost=CostModel.unit())
        group = PlaceGroup.of_ids([2, 3])
        results = rt.finish_all(group, lambda ctx: ctx.place.id)
        assert results == [2, 3]
        assert rt.now() > 0  # the driver still paid spawn/join


class TestSnapshotIntrospection:
    def test_num_keys_and_has_key(self):
        from repro.matrix.dupvector import DupVector

        rt = Runtime(3, cost=CostModel.zero())
        v = DupVector.make(rt, 4).init(1.0)
        snap = v.make_snapshot()
        assert snap.num_keys == 3
        assert snap.has_key(0) and not snap.has_key(3)

    def test_app_snapshot_all_objects(self):
        from repro.matrix.dupvector import DupVector
        from repro.resilience.store import AppResilientStore

        rt = Runtime(3, cost=CostModel.zero())
        store = AppResilientStore(rt)
        a = DupVector.make(rt, 2).init(1.0)
        b = DupVector.make(rt, 2).init(2.0)
        store.start_new_snapshot()
        store.save(a)
        store.save_read_only(b)
        store.commit(0)
        assert set(store.latest().all_objects()) == {a, b}


class TestFinishTasksDirect:
    def test_explicit_task_list_with_repeats(self):
        rt = Runtime(3, cost=CostModel.zero())
        tasks = [
            (Place(1), lambda ctx: "a"),
            (Place(1), lambda ctx: "b"),
            (Place(2), lambda ctx: "c"),
        ]
        assert rt.finish_tasks(tasks) == ["a", "b", "c"]

    def test_empty_task_list(self):
        rt = Runtime(2, cost=CostModel.unit())
        assert rt.finish_tasks([]) == []


class TestDenseVectorConstructors:
    def test_from_function(self):
        from repro.matrix.dense import DenseMatrix

        a = DenseMatrix.from_function(3, 2, lambda i, j: i * 10 + j)
        assert a.data[2, 1] == 21.0

    def test_vector_of_and_random(self):
        from repro.matrix.vector import Vector

        assert Vector.of([1, 2]).n == 2
        v = Vector.random(5, np.random.default_rng(0))
        assert v.n == 5 and (0 <= v.data).all() and (v.data < 1).all()


class TestCliDiagnostics:
    def test_profile_and_timeline_flags(self, capsys):
        from repro.cli import main

        assert main([
            "run", "pagerank", "--places", "3", "--iterations", "3",
            "--profile", "--timeline",
        ]) == 0
        out = capsys.readouterr().out
        assert "per-operation profile" in out
        assert "finish timeline" in out
        assert "matvec" in out
