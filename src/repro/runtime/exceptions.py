"""Exception types mirroring Resilient X10's failure surface.

Resilient X10 turns the death of a place into a ``DeadPlaceException``
delivered at the enclosing ``finish``; multiple simultaneous failures are
aggregated.  Place zero is immortal by assumption — its death aborts the
whole run — and losing both copies of a snapshot partition is unrecoverable
data loss.
"""

from __future__ import annotations

from typing import List, Sequence


class RuntimeFault(Exception):
    """Base class for all simulator faults."""


class DeadPlaceException(RuntimeFault):
    """A task touched (or was to be spawned on) a dead place.

    Mirrors ``x10.lang.DeadPlaceException``: raised at the enclosing finish
    after all surviving tasks have terminated.
    """

    def __init__(self, place_id: int, message: str = ""):
        self.place_id = place_id
        super().__init__(message or f"place {place_id} is dead")

    @property
    def places(self) -> List[int]:
        """Uniform accessor shared with :class:`MultipleException`."""
        return [self.place_id]


class MultipleException(RuntimeFault):
    """Several tasks of one finish failed (e.g. several places died).

    Mirrors ``x10.lang.MultipleExceptions``; carries the individual
    exceptions so handlers can extract every dead place.
    """

    def __init__(self, exceptions: Sequence[Exception]):
        self.exceptions = list(exceptions)
        super().__init__(f"{len(self.exceptions)} tasks failed: {self.exceptions!r}")

    @property
    def places(self) -> List[int]:
        """Ids of all dead places named by the aggregated exceptions."""
        ids: List[int] = []
        for exc in self.exceptions:
            if isinstance(exc, (DeadPlaceException, MultipleException)):
                ids.extend(exc.places)
        return sorted(set(ids))


class PlaceZeroDeadError(RuntimeFault):
    """Place zero died: the whole application fails (X10 assumption)."""

    def __init__(self) -> None:
        super().__init__("place 0 died: resilient X10 cannot survive place zero")


class DataLossError(RuntimeFault):
    """Both the primary and the backup copy of a snapshot entry are gone.

    Happens when two *adjacent* places in a snapshot's place group die
    between a checkpoint and the restore — the double in-memory store only
    protects against non-adjacent failures.
    """


class DanglingReferenceError(RuntimeFault):
    """A GlobalRef / PlaceLocalHandle was resolved on the wrong or a dead place."""


class SpareExhaustedError(RuntimeFault):
    """Replace-redundant restoration requested more spare places than remain."""
