"""Estimate the on-the-wire size of payloads moved between places.

The virtual-time cost model charges communication by byte volume.  Payloads
in this reproduction are NumPy arrays, the single-place matrix classes, and
small containers of those; this module computes their serialized size the
way the X10 sockets transport would (raw element bytes plus small framing).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from repro.util.versioning import payload_frozen

#: Fixed framing overhead per serialized object (message header, type tag).
FRAMING_BYTES = 64


def payload_nbytes(obj: Any) -> int:
    """Return the estimated serialized size of *obj* in bytes.

    Supports ``None``, numbers, strings, NumPy arrays, and (possibly nested)
    lists / tuples / dicts of those, plus any object exposing a ``nbytes``
    attribute or ``payload_nbytes()`` method (the single-place matrix
    classes do).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + FRAMING_BYTES
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8")) + FRAMING_BYTES
    if isinstance(obj, (list, tuple, set, frozenset)):
        return FRAMING_BYTES + sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return FRAMING_BYTES + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    method = getattr(obj, "payload_nbytes", None)
    if callable(method):
        return int(method()) + FRAMING_BYTES
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + FRAMING_BYTES
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


_NBYTES_MEMO_CAPACITY = 4096
_nbytes_memo: "OrderedDict[Any, int]" = OrderedDict()


def memoized_nbytes(obj: Any, token: Optional[Any]) -> int:
    """:func:`payload_nbytes` memoized by mutation-version *token*.

    Same token contract as :func:`repro.util.checksum.memoized_checksum`
    (a token identifies one immutable byte state), but unlike the checksum
    memo the cache is consulted *before* the frozen-ness walk: the only
    same-token-different-bytes payloads in the system are the fault
    injector's bit-flipped copies, and a bit flip never changes a size.
    New entries are still only recorded for frozen payloads.
    Capacity-bounded LRU.
    """
    if token is not None:
        cached = _nbytes_memo.get(token)
        if cached is not None:
            _nbytes_memo.move_to_end(token)
            return cached
    if token is None or not payload_frozen(obj):
        return payload_nbytes(obj)
    size = payload_nbytes(obj)
    _nbytes_memo[token] = size
    while len(_nbytes_memo) > _NBYTES_MEMO_CAPACITY:
        _nbytes_memo.popitem(last=False)
    return size
