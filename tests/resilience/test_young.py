"""Tests for Young's checkpoint-interval formula."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.resilience.young import (
    expected_overhead_fraction,
    optimal_interval,
    optimal_interval_iterations,
)


class TestOptimalInterval:
    def test_formula(self):
        assert optimal_interval(2.0, 100.0) == pytest.approx(20.0)

    def test_zero_checkpoint_cost(self):
        assert optimal_interval(0.0, 100.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_interval(-1.0, 100.0)
        with pytest.raises(ValueError):
            optimal_interval(1.0, 0.0)

    @given(c=st.floats(0.001, 100), m=st.floats(0.001, 1e6))
    def test_monotone(self, c, m):
        # More expensive checkpoints and rarer failures both widen the interval.
        assert optimal_interval(2 * c, m) > optimal_interval(c, m)
        assert optimal_interval(c, 2 * m) > optimal_interval(c, m)

    @given(c=st.floats(0.001, 100), m=st.floats(0.001, 1e6))
    def test_matches_definition(self, c, m):
        assert optimal_interval(c, m) == pytest.approx(math.sqrt(2 * c * m))


class TestIterationForm:
    def test_rounds_to_iterations(self):
        # τ = 20s at 2.1s/iter → ~10 iterations.
        assert optimal_interval_iterations(2.0, 100.0, 2.1) == 10

    def test_at_least_one(self):
        assert optimal_interval_iterations(1e-9, 1.0, 100.0) == 1

    def test_invalid_iteration_time(self):
        with pytest.raises(ValueError):
            optimal_interval_iterations(1.0, 1.0, 0.0)


class TestOverhead:
    def test_zero_cost_zero_overhead(self):
        assert expected_overhead_fraction(0.0, 100.0) == 0.0

    def test_restart_term(self):
        base = expected_overhead_fraction(1.0, 100.0)
        assert expected_overhead_fraction(1.0, 100.0, restart_time=10.0) == pytest.approx(
            base + 0.1
        )

    def test_invalid_mttf(self):
        with pytest.raises(ValueError):
            expected_overhead_fraction(1.0, 0.0)
