"""The single entry point for constructing a wired runtime.

Every front end (CLI, chaos campaigns, benchmark harness, service layer)
used to hand-roll ``Runtime(...)`` with slightly different keyword soups.
:func:`make_runtime` is the one place runtimes are assembled now, so pool
and lease wiring — and any future construction-time concern — has a single
seam instead of half a dozen copies.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.cost import CostModel
from repro.runtime.failure import RetryPolicy, TransientFaultModel
from repro.runtime.runtime import Runtime


def make_runtime(
    nplaces: int,
    *,
    cost: Optional[CostModel] = None,
    resilient: bool = False,
    spares: int = 0,
    trace: bool = False,
    faults: Optional[TransientFaultModel] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Runtime:
    """Build a :class:`Runtime` (and its place pool) in one call.

    Parameters mirror ``Runtime.__init__`` plus the transient-fault wiring
    that callers otherwise bolt on afterwards.  ``spares`` places go into
    the pool's shared reserve; carve leases with ``rt.pool.lease(...)`` or
    let single-job paths fall back to ``rt.default_lease``.
    """
    rt = Runtime(
        nplaces,
        cost=cost if cost is not None else CostModel.zero(),
        resilient=resilient,
        spares=spares,
        trace=trace,
    )
    if faults is not None or retry_policy is not None:
        rt.set_faults(faults, retry_policy)
    return rt
