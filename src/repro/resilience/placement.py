"""Replica placement policies for the tiered snapshot store.

The paper's double in-memory store always puts the (single) backup on the
*next* place of the group.  With a replication factor ``k > 1`` the choice
of *which* places hold the copies decides which correlated failures a
checkpoint survives: consecutive ring offsets die together under an
adjacent-pair burst, while spread-out replicas survive it.  A
:class:`ReplicaPlacement` maps a replication level and a group size to the
list of ring *offsets* (relative to the primary's group index) at which the
backup copies live.

Every policy guarantees that **no replica co-resides with its primary**
whenever the group has more than one place: an offset that would land on
the primary (``0 mod size``) or on another replica of the same key is
deterministically shifted to the next free non-zero residue.  Only when the
group is a single place (nowhere else to go) do copies degenerate to local
duplicates, matching the seed store's behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Type

from repro.util.validation import require


def resolve_offsets(raw: List[int], group_size: int) -> List[int]:
    """Normalize candidate ring offsets for one key's replicas.

    Each offset is reduced mod *group_size*; offsets of ``0`` (co-resident
    with the primary) and collisions with earlier replicas are advanced,
    wrapping over ``1..group_size-1``, to the first free residue.  Once all
    distinct residues are taken (``k >= size - 1``) replicas double up on
    non-primary places — the store cannot invent more places, but it never
    stacks a copy on the one whose death already loses the primary.
    """
    if group_size <= 1:
        return [0 for _ in raw]
    used: set = set()
    out: List[int] = []
    for cand in raw:
        first = cand % group_size
        if first == 0:
            first = 1
        offset = first
        for step in range(group_size - 1):
            probe = (first - 1 + step) % (group_size - 1) + 1
            if probe not in used:
                offset = probe
                break
        used.add(offset)
        out.append(offset)
    return out


class ReplicaPlacement(ABC):
    """Maps (replication level, group size) to backup ring offsets."""

    #: Registry / CLI name of the policy.
    name: str = "?"

    @abstractmethod
    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        """Candidate offsets for replicas ``1..backups`` (may collide;
        callers normalize through :func:`resolve_offsets`)."""

    def offsets(self, backups: int, group_size: int) -> List[int]:
        """The resolved, collision-free offsets for this policy."""
        require(backups >= 0, "backups must be >= 0")
        return resolve_offsets(self.raw_offsets(backups, group_size), group_size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RingPlacement(ReplicaPlacement):
    """The paper's scheme generalized: replica *r* on the *r*-th next place.

    ``k=1`` is exactly the double in-memory store.  Consecutive offsets keep
    restore reads close but die together under adjacent bursts.
    """

    name = "ring"

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        return list(range(1, backups + 1))


class StridePlacement(ReplicaPlacement):
    """Replica *r* at offset ``r * stride``: skips over likely co-failing
    neighbours (e.g. ``stride = places_per_node`` avoids same-node copies).
    """

    name = "stride"

    def __init__(self, stride: int = 2):
        require(stride >= 1, "stride must be >= 1")
        self.stride = stride

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        return [r * self.stride for r in range(1, backups + 1)]

    def __repr__(self) -> str:
        return f"StridePlacement(stride={self.stride})"


class SpreadPlacement(ReplicaPlacement):
    """Replicas spaced evenly around the ring (maximal spread).

    The k+1 copies of a key sit ``size/(k+1)`` places apart, so a burst
    must span at least that distance to reach two copies — the placement
    that survives adjacent-pair and small-rack correlated failures.
    """

    name = "spread"

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        if group_size <= 1:
            return [0] * backups
        return [
            max(1, round(r * group_size / (backups + 1)))
            for r in range(1, backups + 1)
        ]


class ParityPlacement(ReplicaPlacement):
    """Erasure-coded placement: one XOR parity block per group of ``g`` keys.

    Not a replica policy at all — instead of k full copies per key, every
    group of up to ``g`` consecutive partitions shares a single parity
    block (the XOR of the members' serialized bytes) stored on a place
    *outside* the group, chosen through :func:`resolve_offsets` so the
    parity never co-resides with any member's primary.  Any single lost
    member per group is reconstructible from the parity plus the
    surviving peers at ~``(1 + 1/g)x`` checkpoint bytes instead of ``kx``.

    A parity snapshot keeps no per-key replicas (``backups`` must be 0);
    :meth:`raw_offsets` enforces that loudly so a plain replica store
    handed this policy fails at construction, not at the first failure.
    """

    name = "parity"

    def __init__(self, group: int = 4):
        require(group >= 2, "parity group size must be >= 2")
        self.group = group

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        require(
            backups == 0,
            "parity placement stores group parity blocks, not per-key "
            "replicas; use it with backups=0 (replicas=1)",
        )
        return []

    def group_span(self, group_size: int) -> int:
        """Effective members per parity group: ``g`` capped so at least
        one group-external place exists to hold the parity block."""
        return max(1, min(self.group, group_size - 1))

    def parity_index(self, start: int, members: int, group_size: int) -> int:
        """Group index of the place holding a group's parity block.

        *start* is the group's first member index and *members* the group's
        size.  The offset is normalized through :func:`resolve_offsets`:
        a raw offset of *members* can never resolve into ``0..members-1``,
        so the parity block provably lands outside the group whenever the
        place group is larger than the parity group.
        """
        offset = resolve_offsets([members], group_size)[0]
        return (start + offset) % group_size

    def __repr__(self) -> str:
        return f"ParityPlacement(group={self.group})"


#: CLI / config registry of the built-in policies.
PLACEMENTS: Dict[str, Type[ReplicaPlacement]] = {
    RingPlacement.name: RingPlacement,
    StridePlacement.name: StridePlacement,
    SpreadPlacement.name: SpreadPlacement,
    ParityPlacement.name: ParityPlacement,
}

#: Policies that take an integer ``name:<n>`` argument from the CLI.
_ARG_POLICIES: Dict[str, Callable[[int], ReplicaPlacement]] = {
    "stride": lambda n: StridePlacement(stride=n),
    "parity": lambda n: ParityPlacement(group=n),
}


def make_placement(spec: str) -> ReplicaPlacement:
    """Build a policy from a CLI spec: ``ring``, ``spread``, ``stride``,
    ``stride:<n>`` for an explicit stride, or ``parity[:g]`` for the
    erasure-coded tier with parity groups of ``g``."""
    name, _, arg = spec.partition(":")
    cls = PLACEMENTS.get(name)
    require(cls is not None, f"unknown placement policy {spec!r} (choices: {sorted(PLACEMENTS)})")
    if arg:
        factory = _ARG_POLICIES.get(name)
        require(factory is not None, f"policy {name!r} takes no argument")
        return factory(int(arg))
    return cls()
