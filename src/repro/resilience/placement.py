"""Replica placement policies for the tiered snapshot store.

The paper's double in-memory store always puts the (single) backup on the
*next* place of the group.  With a replication factor ``k > 1`` the choice
of *which* places hold the copies decides which correlated failures a
checkpoint survives: consecutive ring offsets die together under an
adjacent-pair burst, while spread-out replicas survive it.  A
:class:`ReplicaPlacement` maps a replication level and a group size to the
list of ring *offsets* (relative to the primary's group index) at which the
backup copies live.

Every policy guarantees that **no replica co-resides with its primary**
whenever the group has more than one place: an offset that would land on
the primary (``0 mod size``) or on another replica of the same key is
deterministically shifted to the next free non-zero residue.  Only when the
group is a single place (nowhere else to go) do copies degenerate to local
duplicates, matching the seed store's behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Type

from repro.util.validation import require


def resolve_offsets(raw: List[int], group_size: int) -> List[int]:
    """Normalize candidate ring offsets for one key's replicas.

    Each offset is reduced mod *group_size*; offsets of ``0`` (co-resident
    with the primary) and collisions with earlier replicas are advanced,
    wrapping over ``1..group_size-1``, to the first free residue.  Once all
    distinct residues are taken (``k >= size - 1``) replicas double up on
    non-primary places — the store cannot invent more places, but it never
    stacks a copy on the one whose death already loses the primary.
    """
    if group_size <= 1:
        return [0 for _ in raw]
    used: set = set()
    out: List[int] = []
    for cand in raw:
        first = cand % group_size
        if first == 0:
            first = 1
        offset = first
        for step in range(group_size - 1):
            probe = (first - 1 + step) % (group_size - 1) + 1
            if probe not in used:
                offset = probe
                break
        used.add(offset)
        out.append(offset)
    return out


class ReplicaPlacement(ABC):
    """Maps (replication level, group size) to backup ring offsets."""

    #: Registry / CLI name of the policy.
    name: str = "?"

    @abstractmethod
    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        """Candidate offsets for replicas ``1..backups`` (may collide;
        callers normalize through :func:`resolve_offsets`)."""

    def offsets(self, backups: int, group_size: int) -> List[int]:
        """The resolved, collision-free offsets for this policy."""
        require(backups >= 0, "backups must be >= 0")
        return resolve_offsets(self.raw_offsets(backups, group_size), group_size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RingPlacement(ReplicaPlacement):
    """The paper's scheme generalized: replica *r* on the *r*-th next place.

    ``k=1`` is exactly the double in-memory store.  Consecutive offsets keep
    restore reads close but die together under adjacent bursts.
    """

    name = "ring"

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        return list(range(1, backups + 1))


class StridePlacement(ReplicaPlacement):
    """Replica *r* at offset ``r * stride``: skips over likely co-failing
    neighbours (e.g. ``stride = places_per_node`` avoids same-node copies).
    """

    name = "stride"

    def __init__(self, stride: int = 2):
        require(stride >= 1, "stride must be >= 1")
        self.stride = stride

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        return [r * self.stride for r in range(1, backups + 1)]

    def __repr__(self) -> str:
        return f"StridePlacement(stride={self.stride})"


class SpreadPlacement(ReplicaPlacement):
    """Replicas spaced evenly around the ring (maximal spread).

    The k+1 copies of a key sit ``size/(k+1)`` places apart, so a burst
    must span at least that distance to reach two copies — the placement
    that survives adjacent-pair and small-rack correlated failures.
    """

    name = "spread"

    def raw_offsets(self, backups: int, group_size: int) -> List[int]:
        if group_size <= 1:
            return [0] * backups
        return [
            max(1, round(r * group_size / (backups + 1)))
            for r in range(1, backups + 1)
        ]


#: CLI / config registry of the built-in policies.
PLACEMENTS: Dict[str, Type[ReplicaPlacement]] = {
    RingPlacement.name: RingPlacement,
    StridePlacement.name: StridePlacement,
    SpreadPlacement.name: SpreadPlacement,
}


def make_placement(spec: str) -> ReplicaPlacement:
    """Build a policy from a CLI spec: ``ring``, ``spread``, ``stride`` or
    ``stride:<n>`` for an explicit stride."""
    name, _, arg = spec.partition(":")
    cls = PLACEMENTS.get(name)
    require(cls is not None, f"unknown placement policy {spec!r} (choices: {sorted(PLACEMENTS)})")
    if arg:
        require(name == "stride", f"policy {name!r} takes no argument")
        return StridePlacement(stride=int(arg))
    return cls()
