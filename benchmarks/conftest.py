"""Benchmark-suite configuration.

The physical matvecs are small (1000x100 per block); multi-threaded BLAS
only adds synchronization overhead at that size, so pin to one thread —
which also matches the paper's OPENBLAS_NUM_THREADS=1 setup.
"""

import os

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("MKL_NUM_THREADS", "1")
