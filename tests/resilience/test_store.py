"""Tests for AppResilientStore: atomic commit, read-only reuse, cancel."""

import numpy as np
import pytest

from repro.matrix.dupvector import DupVector
from repro.matrix.distvector import DistVector
from repro.resilience.store import AppResilientStore
from repro.runtime import CostModel, DeadPlaceException, MultipleException, Runtime


def make_rt(n=4):
    return Runtime(n, cost=CostModel.zero())


class TestCommitProtocol:
    def test_basic_snapshot_restore_cycle(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 5).init_random(1)
        ref = v.to_array()
        store.start_new_snapshot()
        store.save(v)
        store.commit(iteration=7)
        v.fill(0.0)
        store.restore()
        assert np.allclose(v.to_array(), ref)
        assert store.latest_iteration == 7

    def test_start_twice_rejected(self):
        store = AppResilientStore(make_rt())
        store.start_new_snapshot()
        with pytest.raises(ValueError):
            store.start_new_snapshot()

    def test_save_requires_open_snapshot(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 3)
        with pytest.raises(ValueError):
            store.save(v)
        with pytest.raises(ValueError):
            store.save_read_only(v)

    def test_duplicate_save_rejected(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 3)
        store.start_new_snapshot()
        store.save(v)
        with pytest.raises(ValueError):
            store.save(v)

    def test_commit_requires_open_snapshot(self):
        store = AppResilientStore(make_rt())
        with pytest.raises(ValueError):
            store.commit()

    def test_restore_requires_commit(self):
        store = AppResilientStore(make_rt())
        with pytest.raises(ValueError):
            store.restore()
        with pytest.raises(ValueError):
            store.latest_iteration

    def test_old_checkpoint_deleted_on_commit(self):
        # Coordinated checkpointing keeps only the latest checkpoint.
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(iteration=0)
        first = store.latest().snapshots[v]
        store.start_new_snapshot()
        store.save(v)
        store.commit(iteration=10)
        # The first snapshot's heap entries are gone.
        for pid in rt.world.ids:
            assert not rt.heap_of(pid).contains(("snap", first.snap_id, rt.world.index_of(rt.world[pid])))
        assert store.latest_iteration == 10


class TestReadOnlyReuse:
    def test_snapshot_created_once(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(3.0)
        store.start_new_snapshot()
        store.save_read_only(v)
        store.commit(0)
        first = store.latest().read_only[v]
        store.start_new_snapshot()
        store.save_read_only(v)
        store.commit(10)
        assert store.latest().read_only[v] is first  # reused, not re-saved

    def test_reuse_skipped_when_copies_lost(self):
        rt = make_rt(4)
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(3.0)
        store.start_new_snapshot()
        store.save_read_only(v)
        store.commit(0)
        first = store.latest().read_only[v]
        # Adjacent double failure destroys one key's both copies.
        rt.kill(1)
        rt.kill(2)
        v.remake(rt.live_world())
        v.init(3.0)
        store.start_new_snapshot()
        store.save_read_only(v)
        store.commit(10)
        assert store.latest().read_only[v] is not first

    def test_checkpoint_bytes_count_read_only_once(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 16).init(1.0)
        w = DupVector.make(rt, 4).init(2.0)
        store.start_new_snapshot()
        store.save_read_only(v)
        store.save(w)
        store.commit(0)
        assert store.total_checkpoint_bytes() > 0


class TestCancel:
    def test_cancel_discards_partial_snapshot(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(5.0)
        store.start_new_snapshot()
        store.save(v)
        store.cancel_snapshot()
        assert not store.in_progress
        assert store.latest() is None
        # The partial snapshot's entries were freed.
        for pid in rt.world.ids:
            assert len(rt.heap_of(pid).keys_with_prefix(("snap",))) == 0

    def test_cancel_keeps_previous_checkpoint(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(iteration=5)
        v.fill(9.0)
        store.start_new_snapshot()
        store.save(v)
        store.cancel_snapshot()
        store.restore()
        assert np.allclose(v.to_array(), 1.0)  # previous checkpoint intact
        assert store.latest_iteration == 5

    def test_cancel_without_open_snapshot_is_noop(self):
        store = AppResilientStore(make_rt())
        store.cancel_snapshot()  # no raise

    def test_failure_mid_save_leaves_store_cancellable(self):
        # A place dies during save(); the caller cancels and the previous
        # checkpoint remains the recovery point — the atomicity guarantee.
        rt = make_rt(4)
        store = AppResilientStore(rt)
        v = DupVector.make(rt, 4).init(1.0)
        w = DistVector.make(rt, 8).fill(2.0)
        store.start_new_snapshot()
        store.save(v)
        store.save(w)
        store.commit(iteration=3)

        rt.kill(2)
        store.start_new_snapshot()
        with pytest.raises((DeadPlaceException, MultipleException)):
            store.save(v)
        store.cancel_snapshot()
        assert store.latest_iteration == 3


class FakeSnapshot:
    """Stand-in snapshot recording deletion; redundancy is controllable."""

    def __init__(self):
        self.deleted = False
        self.redundant = True
        self.total_nbytes = 1.0

    def fully_redundant(self):
        return self.redundant

    def reusable(self):
        return self.redundant

    def delete(self):
        self.deleted = True


class FakeObject:
    """Minimal Snapshottable whose snapshots are FakeSnapshots."""

    def __init__(self):
        self.taken = []

    def make_snapshot(self):
        snap = FakeSnapshot()
        self.taken.append(snap)
        return snap

    def restore_snapshot(self, snap):
        pass


class TestReadOnlyReclamation:
    """commit()/cancel_snapshot() lifetime rules for read-only snapshots."""

    def test_superseded_read_only_freed_on_commit(self):
        store = AppResilientStore(make_rt())
        obj = FakeObject()
        store.start_new_snapshot()
        store.save_read_only(obj)
        store.commit(0)
        first = obj.taken[0]
        # Copies lost: the next checkpoint must take a fresh snapshot...
        first.redundant = False
        store.start_new_snapshot()
        store.save_read_only(obj)
        # ...but the degraded one stays alive until the commit publishes
        # its replacement (the previous checkpoint may still need it).
        assert not first.deleted
        store.commit(1)
        # Now unreferenced: reclaimed.
        assert first.deleted
        assert not obj.taken[1].deleted

    def test_reused_read_only_survives_commit(self):
        store = AppResilientStore(make_rt())
        obj = FakeObject()
        store.start_new_snapshot()
        store.save_read_only(obj)
        store.commit(0)
        store.start_new_snapshot()
        store.save_read_only(obj)
        store.commit(1)
        assert len(obj.taken) == 1  # reused, never re-taken
        assert not obj.taken[0].deleted

    def test_cancel_keeps_registry_read_only_snapshot(self):
        store = AppResilientStore(make_rt())
        obj = FakeObject()
        store.start_new_snapshot()
        store.save_read_only(obj)
        store.cancel_snapshot()
        # The snapshot is registry-held and still valid: a later attempt
        # reuses it instead of re-saving.
        assert not obj.taken[0].deleted
        store.start_new_snapshot()
        store.save_read_only(obj)
        assert len(obj.taken) == 1

    def test_cancel_after_resave_keeps_both_generations(self):
        store = AppResilientStore(make_rt())
        obj = FakeObject()
        store.start_new_snapshot()
        store.save_read_only(obj)
        store.commit(0)
        first = obj.taken[0]
        first.redundant = False
        store.start_new_snapshot()
        store.save_read_only(obj)  # fresh re-save into the attempt
        store.cancel_snapshot()
        # The committed checkpoint still references the old snapshot and
        # the registry holds the new one: neither may be freed.
        assert not first.deleted
        assert not obj.taken[1].deleted
        assert store.latest().read_only[obj] is first

    def test_cancel_frees_only_mutable_partials(self):
        store = AppResilientStore(make_rt())
        ro, mut = FakeObject(), FakeObject()
        store.start_new_snapshot()
        store.save_read_only(ro)
        store.save(mut)
        store.cancel_snapshot()
        assert mut.taken[0].deleted
        assert not ro.taken[0].deleted


class TestMultiObjectCheckpoint:
    def test_restore_reloads_all_objects(self):
        rt = make_rt()
        store = AppResilientStore(rt)
        a = DupVector.make(rt, 4).init_random(1)
        b = DistVector.make(rt, 9).init_random(2)
        ra, rb = a.to_array(), b.to_array()
        store.start_new_snapshot()
        store.save(a)
        store.save(b)
        store.commit(0)
        a.fill(0.0)
        b.fill(0.0)
        store.restore()
        assert np.allclose(a.to_array(), ra)
        assert np.allclose(b.to_array(), rb)
