"""Wall-clock speed benchmark for the hot-path pass (BENCH_speed.json).

Unlike every other file in this directory — which regenerates a table or
figure of the paper in *virtual* time — this benchmark measures how fast
the simulator itself runs in *wall-clock* time, on the two workloads the
speed pass targeted:

* the 200-schedule chaos campaign (``repro.chaos``), linreg and pagerank,
  measured both with the divergence-point prefix cache off and on — the
  off/on pair is interleaved in one process, the same A/B discipline the
  stash/pop baselines use across trees;
* the Figs. 2-4 overhead sweep and Figs. 5-7 restore sweep.

Each suite is measured warm (a short warm-up run first) and best-of-N, so
import/compile time and allocator warm-up never pollute the numbers.

Baseline numbers were measured on the pre-pass tree *interleaved with* the
optimized tree in a single session on the same machine (stash/pop A/B, one
core), so the ratio is not contaminated by machine drift between sessions.

Two correctness gates run alongside the timing and fail the benchmark on
any drift:

* the campaign outcome fingerprint (137 recovered / 63 data-loss-accepted,
  zero invariant violations for seed 1234) must be reproduced exactly, and
  the cache-on campaign must produce outcomes bitwise identical to the
  cache-off campaign (the prefix cache may never buy outcome drift);
* the linreg golden virtual times (same pins as ``tests/test_golden_timing``)
  must match to 1e-12 — wall-clock speed must never buy virtual-time drift.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py           # full protocol
    PYTHONPATH=src python benchmarks/bench_speed.py --quick   # CI-sized
    PYTHONPATH=src python benchmarks/bench_speed.py --probe   # print raw
        timings as JSON and write nothing (used to pin the baselines)

Writes ``results/speed.csv`` and ``BENCH_speed.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import platform
import sys
import time
from typing import Callable, Dict

CAMPAIGN_SEED = 1234
CAMPAIGN_SCHEDULES = 200

#: Expected outcome counts of the seed-1234 linreg/pagerank campaigns.
CAMPAIGN_FINGERPRINT = {"recovered": 137, "data_loss_accepted": 63}

#: Golden linreg virtual times (ms/iter) — same pins as tests/test_golden_timing.
GOLDEN_LINREG_PLACES = [2, 8, 20]
GOLDEN_LINREG_ITERS = 6
GOLDEN_LINREG = {
    "non-resilient finish": [76.73699999999998, 96.69500000000035, 130.30499999999876],
    "resilient finish": [85.56499999999993, 128.48499999999743, 209.98000000000636],
}

#: Pre-pass wall-clock seconds, measured interleaved with the optimized
#: tree (stash/pop A/B, best-of-2 warm runs, single-core container).  The
#: campaign baselines predate BOTH speed passes (hot-path kernels and the
#: prefix cache), so their ratios are cumulative.  The ``_cache_on`` suites
#: take their baseline from the same-session ``_cache_off`` measurement
#: instead — an in-process interleaved A/B needs no cross-tree pin.
BASELINE_S = {
    "campaign_linreg_200": 2.416,
    "campaign_pagerank_200": 2.350,
    "fig2_4_overhead": 40.88,
    "fig5_7_restore": 110.21,
}


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(quick: bool = False, repeats: int = 2) -> Dict[str, float]:
    """Run every suite warm and return ``{suite: best wall seconds}``."""
    from repro.bench.harness import run_overhead_sweep, run_restore_sweep
    from repro.chaos import CampaignConfig, run_campaign

    schedules = 50 if quick else CAMPAIGN_SCHEDULES
    places = [2, 8, 20] if quick else None  # None -> full paper axis

    timings: Dict[str, float] = {}

    # Warm-up: compile + first-touch everything outside the timed region.
    run_campaign(CampaignConfig(app="linreg", schedules=10, seed=CAMPAIGN_SEED))

    for app in ("linreg", "pagerank"):
        cfg = CampaignConfig(app=app, schedules=schedules, seed=CAMPAIGN_SEED)
        # Interleave the cache-off and cache-on reps so allocator state and
        # machine drift hit both sides of the A/B equally.
        off = on = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_campaign(cfg, prefix_cache=False)
            off = min(off, time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_campaign(cfg, prefix_cache=True)
            on = min(on, time.perf_counter() - t0)
        # The legacy suite name tracks the default (cache-on) path so the
        # trend series vs the pre-pass baseline stays comparable.
        timings[f"campaign_{app}_{schedules}"] = on
        timings[f"campaign_{app}_{schedules}_cache_off"] = off
        timings[f"campaign_{app}_{schedules}_cache_on"] = on

    timings["fig2_4_overhead"] = _best_of(
        lambda: [
            run_overhead_sweep(app, places_list=places)
            for app in ("linreg", "logreg", "pagerank")
        ],
        1,
    )
    timings["fig5_7_restore"] = _best_of(
        lambda: [
            run_restore_sweep(app, places_list=places)
            for app in ("linreg", "logreg", "pagerank")
        ],
        1,
    )
    return timings


def check_campaign_fingerprint() -> Dict[str, int]:
    """Re-run the linreg campaign cache-off and cache-on; assert the outcome
    fingerprint and that the two modes are bitwise identical."""
    from dataclasses import asdict

    from repro.chaos import CampaignConfig, run_campaign

    cfg = CampaignConfig(
        app="linreg", schedules=CAMPAIGN_SCHEDULES, seed=CAMPAIGN_SEED
    )
    outcomes = {}
    for prefix_cache in (False, True):
        rep = run_campaign(cfg, prefix_cache=prefix_cache)
        counts = rep.counts()
        if counts != CAMPAIGN_FINGERPRINT:
            raise AssertionError(
                f"campaign outcome drift (prefix_cache={prefix_cache}): "
                f"{counts} != {CAMPAIGN_FINGERPRINT}"
            )
        if rep.violations:
            raise AssertionError(
                f"{len(rep.violations)} invariant violation(s) "
                f"(prefix_cache={prefix_cache})"
            )
        outcomes[prefix_cache] = [asdict(o) for o in rep.outcomes]
    if outcomes[False] != outcomes[True]:
        raise AssertionError(
            "prefix cache changed campaign outcomes: cache-on is not "
            "bitwise identical to cache-off"
        )
    return counts


def check_virtual_time_drift() -> None:
    """Golden-timing gate: the speed pass must be virtually bit-exact."""
    from repro.bench.harness import run_overhead_sweep

    series = run_overhead_sweep(
        "linreg", places_list=GOLDEN_LINREG_PLACES, iterations=GOLDEN_LINREG_ITERS
    )
    for label, golden in GOLDEN_LINREG.items():
        measured = series.values[label]
        for m, g in zip(measured, golden):
            if abs(m - g) > max(1e-12 * abs(g), 1e-9):
                raise AssertionError(
                    f"virtual-time drift in {label}: {measured} != {golden}"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized protocol")
    parser.add_argument(
        "--probe",
        action="store_true",
        help="print raw timings as JSON and write nothing (baseline pinning)",
    )
    args = parser.parse_args(argv)

    timings = measure(quick=args.quick)
    if args.probe:
        print(json.dumps(timings, indent=2))
        return 0

    fingerprint = check_campaign_fingerprint()
    check_virtual_time_drift()

    from repro.matrix.sparse_backend import active_backend

    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    rows = []
    for suite, seconds in timings.items():
        if suite.endswith("_cache_on"):
            # In-process interleaved A/B: the baseline is the same-session
            # cache-off measurement, valid at any schedule count.
            base = timings[suite[: -len("_cache_on")] + "_cache_off"]
            speedup = base / seconds
            rows.append(
                {
                    "suite": suite,
                    "wall_s": round(seconds, 3),
                    "baseline_s": round(base, 3),
                    "speedup": round(speedup, 2),
                }
            )
            continue
        base = BASELINE_S.get(suite)
        speedup = (base / seconds) if (base and not args.quick) else None
        rows.append(
            {
                "suite": suite,
                "wall_s": round(seconds, 3),
                "baseline_s": base if not args.quick else None,
                "speedup": round(speedup, 2) if speedup else None,
            }
        )

    csv_path = os.path.join(here, "results", "speed.csv")
    with open(csv_path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=["suite", "wall_s", "baseline_s", "speedup"])
        writer.writeheader()
        writer.writerows(rows)

    payload = {
        "protocol": "quick" if args.quick else "full",
        "suites": rows,
        "campaign": {
            "app": "linreg",
            "schedules": CAMPAIGN_SCHEDULES,
            "seed": CAMPAIGN_SEED,
            "outcomes": fingerprint,
            "violations": 0,
            "prefix_cache_bitwise_identical": True,
        },
        "prefix_cache": {
            "methodology": (
                "cache-off and cache-on reps interleaved within one "
                "process (off, on, off, on, ...), best-of per side; the "
                "cache-off path is the pre-cache simulator, so the ratio "
                "is a same-session A/B with no cross-tree pin needed"
            ),
            "suites": {
                suite[len("campaign_"):]: {
                    "off_s": round(timings[suite[: -len("_cache_on")] + "_cache_off"], 3),
                    "on_s": round(seconds, 3),
                    "speedup": round(
                        timings[suite[: -len("_cache_on")] + "_cache_off"] / seconds, 2
                    ),
                }
                for suite, seconds in timings.items()
                if suite.endswith("_cache_on")
            },
        },
        "virtual_time_drift": "none (golden linreg pins matched to 1e-12)",
        "sparse_backend": active_backend(),
        "baseline_methodology": (
            "pre-pass tree measured interleaved with the optimized tree "
            "(stash/pop A/B) in one session on the same machine; warm, "
            "best-of-2 per suite; single-core container"
        ),
        "python": platform.python_version(),
    }
    json_path = os.path.join(here, "BENCH_speed.json")
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    for row in rows:
        line = f"{row['suite']:>24}: {row['wall_s']:.3f}s"
        if row["speedup"]:
            line += f"  ({row['speedup']:.2f}x vs baseline {row['baseline_s']:.3f}s)"
        print(line)
    print(f"wrote {csv_path} and {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
