"""Lines-of-code counting for the Table II reproduction.

The paper compares the programming effort of the non-resilient and resilient
versions of LinReg, LogReg and PageRank by counting lines of code, including
the LOC of the ``checkpoint`` and ``restore`` methods specifically.  We count
our *own* application sources with the same convention the paper's Table II
implies: non-blank, non-comment lines.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List


def _is_code_line(line: str) -> bool:
    stripped = line.strip()
    if not stripped:
        return False
    if stripped.startswith("#"):
        return False
    return True


def count_loc(source: str) -> int:
    """Count non-blank, non-comment lines in *source*.

    Docstrings are counted as code (they are statements), matching a naive
    line count of a working program; the paper does not state a docstring
    convention, and both sides of our comparison are documented equally, so
    the *difference* — the quantity Table II is about — is unaffected.
    """
    return sum(1 for line in source.splitlines() if _is_code_line(line))


def loc_of_object(obj: Any) -> int:
    """Count LOC of a function, method, class, or module via its source."""
    return count_loc(inspect.getsource(obj))


def loc_of_file(path: "str | Path") -> int:
    """Count LOC of a source file on disk."""
    return count_loc(Path(path).read_text(encoding="utf-8"))


@dataclass
class AppLocRow:
    """One row of the Table II reproduction."""

    application: str
    nonresilient_total: int
    resilient_total: int
    checkpoint_loc: int
    restore_loc: int

    def as_tuple(self) -> tuple:
        return (
            self.application,
            self.nonresilient_total,
            self.resilient_total,
            self.checkpoint_loc,
            self.restore_loc,
        )


def loc_report(rows: Iterable[AppLocRow]) -> str:
    """Render Table II-style rows as an aligned text table."""
    header = ("Application", "Non-resilient", "Resilient", "Checkpoint", "Restore")
    table: List[tuple] = [header] + [r.as_tuple() for r in rows]
    widths = [max(len(str(row[i])) for row in table) for i in range(len(header))]
    lines = []
    for row in table:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def method_loc_map(cls: type, methods: Iterable[str]) -> Dict[str, int]:
    """Return ``{method_name: loc}`` for the named methods of *cls*."""
    return {name: loc_of_object(getattr(cls, name)) for name in methods}
