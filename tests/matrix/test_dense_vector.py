"""Tests for the single-place DenseMatrix and Vector classes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matrix.dense import DenseMatrix, flops_cellwise, flops_matmul, flops_matvec
from repro.matrix.vector import Vector

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestDenseMatrix:
    def test_make_zero(self):
        a = DenseMatrix.make(3, 4)
        assert a.shape == (3, 4)
        assert a.norm_f() == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            DenseMatrix(np.zeros(5))

    def test_cell_ops(self):
        a = DenseMatrix(np.ones((2, 2)))
        b = DenseMatrix(np.full((2, 2), 3.0))
        a.cell_add(b).cell_sub(1.0).scale(2.0)
        assert np.allclose(a.data, 6.0)
        a.cell_mult(b)
        assert np.allclose(a.data, 18.0)

    def test_shape_mismatch(self):
        a, b = DenseMatrix.make(2, 2), DenseMatrix.make(2, 3)
        for op in (a.cell_add, a.cell_sub, a.cell_mult, a.max_abs_diff):
            with pytest.raises(ValueError):
                op(b)

    def test_mult(self):
        rng = np.random.default_rng(0)
        a = DenseMatrix.random(3, 4, rng)
        b = DenseMatrix.random(4, 5, rng)
        c = DenseMatrix.make(3, 5).mult(a, b)
        assert np.allclose(c.data, a.data @ b.data)

    def test_mult_dim_check(self):
        with pytest.raises(ValueError):
            DenseMatrix.make(3, 5).mult(DenseMatrix.make(3, 4), DenseMatrix.make(5, 5))

    def test_matvec_tmatvec(self):
        rng = np.random.default_rng(1)
        a = DenseMatrix.random(3, 4, rng)
        x, y = rng.random(4), rng.random(3)
        assert np.allclose(a.matvec(x), a.data @ x)
        assert np.allclose(a.t_matvec(y), a.data.T @ y)

    def test_transpose(self):
        a = DenseMatrix.from_function(2, 3, lambda i, j: 10 * i + j)
        assert np.array_equal(a.transpose().data, a.data.T)

    def test_sub_matrix_roundtrip(self):
        a = DenseMatrix.from_function(5, 6, lambda i, j: i * 6 + j)
        sub = a.sub_matrix(1, 4, 2, 5)
        assert sub.shape == (3, 3)
        b = DenseMatrix.make(5, 6)
        b.set_sub_matrix(1, 2, sub)
        assert np.array_equal(b.data[1:4, 2:5], a.data[1:4, 2:5])

    def test_sub_matrix_bounds(self):
        a = DenseMatrix.make(3, 3)
        with pytest.raises(ValueError):
            a.sub_matrix(0, 4, 0, 2)
        with pytest.raises(ValueError):
            a.set_sub_matrix(2, 2, DenseMatrix.make(2, 2))

    def test_equals_approx(self):
        a = DenseMatrix(np.ones((2, 2)))
        b = DenseMatrix(np.ones((2, 2)) + 1e-12)
        assert a.equals_approx(b, tol=1e-9)
        assert not a.equals_approx(DenseMatrix(np.zeros((2, 2))), tol=1e-9)

    def test_copy_is_deep(self):
        a = DenseMatrix(np.ones((2, 2)))
        b = a.copy()
        b.data[0, 0] = 9
        assert a.data[0, 0] == 1.0

    @given(arrays(np.float64, (3, 4), elements=finite))
    def test_from_to_roundtrip(self, data):
        assert np.array_equal(DenseMatrix(data).data, data)


class TestVector:
    def test_make(self):
        v = Vector.make(5)
        assert v.n == 5 and v.norm2() == 0.0

    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            Vector(np.zeros((2, 2)))

    def test_cell_ops(self):
        v = Vector.of([1.0, 2.0, 3.0])
        v.cell_add(1.0).scale(2.0).cell_sub(Vector.of([1, 1, 1]))
        assert np.allclose(v.data, [3, 5, 7])
        v.cell_mult(Vector.of([2, 2, 2]))
        assert np.allclose(v.data, [6, 10, 14])

    def test_axpy(self):
        v = Vector.of([1.0, 1.0])
        v.axpy(2.0, Vector.of([3.0, 4.0]))
        assert np.allclose(v.data, [7, 9])

    def test_dot_norm_sum(self):
        v = Vector.of([3.0, 4.0])
        assert v.dot(v) == 25.0
        assert v.norm2() == 5.0
        assert v.sum() == 7.0

    def test_map(self):
        v = Vector.of([1.0, 4.0, 9.0]).map(np.sqrt)
        assert np.allclose(v.data, [1, 2, 3])

    def test_sub_vector(self):
        v = Vector.of(np.arange(6.0))
        s = v.sub_vector(2, 5)
        assert np.allclose(s.data, [2, 3, 4])
        w = Vector.make(6)
        w.set_sub_vector(1, s)
        assert np.allclose(w.data, [0, 2, 3, 4, 0, 0])

    def test_length_mismatch(self):
        v, w = Vector.make(3), Vector.make(4)
        for op in (v.cell_add, v.cell_sub, v.cell_mult, v.dot, v.max_abs_diff):
            with pytest.raises(ValueError):
                op(w)

    def test_bounds(self):
        v = Vector.make(3)
        with pytest.raises(ValueError):
            v.sub_vector(1, 5)
        with pytest.raises(ValueError):
            v.set_sub_vector(2, Vector.make(2))

    @given(arrays(np.float64, 10, elements=finite), arrays(np.float64, 10, elements=finite))
    def test_dot_matches_numpy(self, a, b):
        assert Vector(a).dot(Vector(b)) == pytest.approx(float(a @ b), rel=1e-12, abs=1e-9)


class TestFlopFormulas:
    def test_values(self):
        assert flops_matvec(3, 4) == 24
        assert flops_matmul(2, 3, 4) == 48
        assert flops_cellwise(5) == 5
        assert flops_cellwise(5, 2) == 10
