"""Tiered store — checkpoint cost and recovery time vs replication level K.

Two facets of the k-replica snapshot store on the LinReg workload:

* **cost**: the full (first) checkpoint duration as a function of K with
  the spread placement — each extra replica adds a fan-out transfer per
  partition, so the cost must grow monotonically in K;
* **recovery**: a correlated *adjacent-pair* kill (the burst that defeats
  the paper's double store).  K >= 2 with the spread placement recovers
  from memory; K < 2 with the paper's ring placement cannot keep a copy of
  every partition out of the blast radius, so those configurations run
  with the stable-storage fallback tier and recover from disk.  Either
  way, recovering must be cheaper than restarting the application from
  scratch — the framework's raison d'être.

Writes ``results/replication.csv``.
"""

from _common import emit, results_path
from repro.apps.resilient import LinRegResilient
from repro.bench import figures
from repro.bench.calibration import regression_bench_workload, regression_cost
from repro.resilience.executor import IterativeExecutor
from repro.resilience.placement import make_placement
from repro.runtime import Runtime

PLACES = 12
ITERATIONS = 30
INTERVAL = 3
KS = [0, 1, 2, 3]


def _executor(
    rt: Runtime, k: int, placement: str, stable_fallback: bool
) -> IterativeExecutor:
    app = LinRegResilient(rt, regression_bench_workload(ITERATIONS))
    return IterativeExecutor(
        rt,
        app,
        checkpoint_interval=INTERVAL,
        replicas=k,
        placement=make_placement(placement),
        stable_fallback=stable_fallback or None,
    )


def checkpoint_cost(k: int) -> float:
    """Failure-free full-checkpoint duration (pure in-memory store)."""
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    report = _executor(rt, k, "spread", stable_fallback=False).run()
    return report.checkpoint_durations[0]


def recovery_run(k: int) -> dict:
    """Adjacent-pair kill; K < 2 (ring) leans on the stable-storage tier."""
    stable = k < 2
    placement = "ring" if k < 2 else "spread"
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    executor = _executor(rt, k, placement, stable_fallback=stable)
    mid = PLACES // 2
    rt.injector.kill_at_iteration(mid, iteration=INTERVAL + 1)
    rt.injector.kill_at_iteration(mid + 1, iteration=INTERVAL + 1)
    report = executor.run()
    return {
        "restores": report.restores,
        "recovery_s": report.restore_time + report.lost_time,
        "total_s": report.total_time,
        "disk_reads": report.stable_fallback_reads,
    }


def baseline_total() -> float:
    """Failure-free resilient run at the paper's configuration (k=1)."""
    rt = Runtime(PLACES, cost=regression_cost(), resilient=True)
    return _executor(rt, 1, "ring", stable_fallback=False).run().total_time


def run_sweep():
    ckpt = {k: checkpoint_cost(k) for k in KS}
    recovery = {k: recovery_run(k) for k in KS}
    return ckpt, recovery, baseline_total()


def test_replication_sweep(benchmark):
    ckpt, recovery, baseline = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        f"LinReg @ {PLACES} places, adjacent double kill at iteration "
        f"{INTERVAL + 1} (k<2 use the disk tier):",
        "k  checkpoint(s)  recovery(s)  total(s)  disk reads",
    ]
    for k in KS:
        r = recovery[k]
        lines.append(
            f"{k}  {ckpt[k]:13.3f}  {r['recovery_s']:11.3f}  "
            f"{r['total_s']:8.3f}  {r['disk_reads']:10d}"
        )
    lines.append(f"failure-free total (k=1): {baseline:.3f} s")
    csv = figures.write_csv(
        results_path("replication.csv"),
        KS,
        {
            "checkpoint_s": [ckpt[k] for k in KS],
            "recovery_s": [recovery[k]["recovery_s"] for k in KS],
            "total_s": [recovery[k]["total_s"] for k in KS],
            "disk_fallback_reads": [float(recovery[k]["disk_reads"]) for k in KS],
        },
        x_name="replicas",
    )
    lines.append(f"series written to {csv}")
    emit("Tiered store — checkpoint cost & recovery vs replicas K", "\n".join(lines))

    # Each replica adds backup traffic: checkpoint cost is monotone in K.
    assert ckpt[0] < ckpt[1] < ckpt[2] < ckpt[3]
    for k in KS:
        r = recovery[k]
        # Every configuration recovers from the adjacent double kill...
        assert r["restores"] >= 1
        # ...k<2 only via the disk tier, k>=2 purely in memory...
        assert (r["disk_reads"] > 0) == (k < 2)
        # ...and recovering beats restarting the whole run from scratch.
        assert r["recovery_s"] < baseline
