"""Resilient finish bookkeeping: the place-zero ledger.

Resilient X10 implements failure-aware ``finish`` by routing task lifecycle
events (spawn and termination) through place zero, which serializes their
processing.  The paper identifies this as the dominant resilience cost and
as "a scalability bottleneck for place-zero-based resilient finish".

:class:`PlaceZeroLedger` models exactly that mechanism: events arrive with
timestamps; a single engine :class:`~repro.engine.resource.Resource`
(rate-limited at ``ledger_event_time`` per event) processes them in arrival
order; a resilient finish cannot complete before the ledger has processed
all of its events.  Because the server runs *concurrently* with the tasks,
bookkeeping for long-running tasks largely hides under the computation —
which is why the paper measures < 5 % overhead for PageRank (few finishes,
long tasks) but ~120 % for LinReg (many short finishes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine loads later)
    from repro.engine.resource import Resource


@dataclass
class LedgerStats:
    """Counters for tests and the overhead benchmarks."""

    events: int = 0
    finishes: int = 0
    busy_time: float = 0.0
    #: Total time finishes spent blocked waiting on the ledger.
    stall_time: float = 0.0


class PlaceZeroLedger:
    """Serialized bookkeeping server co-located with place zero.

    The ledger has its own timeline (Resilient X10 services bookkeeping
    messages on runtime-internal threads, concurrently with user tasks):
    an engine :class:`~repro.engine.resource.Resource` whose busy-until
    frontier is the time all recorded events have been processed.  The
    runtime passes its scheduler's ledger resource so the events appear in
    the engine's typed event log; a stand-alone ledger creates its own.
    """

    def __init__(self, event_time: float, resource: Optional["Resource"] = None):
        self.event_time = event_time
        if resource is None:
            from repro.engine.resource import Resource

            resource = Resource(("ledger",))
        self.resource = resource
        self.stats = LedgerStats()

    @property
    def ready_time(self) -> float:
        """Virtual time at which all recorded events have been processed."""
        return self.resource.free_at

    def process(self, arrival_times: List[float]) -> float:
        """Serially process events arriving at the given times.

        Returns the time at which the *last* of these events has been
        processed, which is the earliest time the owning finish may
        terminate.  Events are processed in arrival order; the server may
        already be busy with earlier events (from this or other finishes).
        """
        if not arrival_times:
            return self.resource.free_at
        # Batched frontier advance: bit-exact to per-event acquire() over
        # the sorted arrivals (see Resource.acquire_batch), without the
        # per-event Python call + re-sort overhead.
        stats = self.stats
        dt = self.event_time
        done = self.resource.acquire_batch(arrival_times, dt)
        if dt:
            # Repeated addition (not n*dt): keeps the accumulated float
            # bit-identical to the historical per-event loop.
            busy = stats.busy_time
            for _ in range(len(arrival_times)):
                busy += dt
            stats.busy_time = busy
        stats.events += len(arrival_times)
        stats.finishes += 1
        return done

    def record_stall(self, seconds: float) -> None:
        """Account time a finish spent waiting for the ledger to drain."""
        if seconds > 0:
            self.stats.stall_time += seconds


@dataclass(slots=True)
class FinishReport:
    """Timing decomposition of one finish, for tests and benchmarks."""

    label: str
    start: float
    end: float
    n_tasks: int
    task_end_max: float = 0.0
    ledger_ready: float = 0.0
    dead_places: List[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def ledger_stall(self) -> float:
        """How long this finish waited on bookkeeping beyond its tasks."""
        return max(0.0, self.ledger_ready - self.task_end_max)
