"""Single-place vectors — GML's ``Vector``.

A wrapper over a 1-D float64 NumPy array with GML's cell-wise API.  Like the
single-place matrices, this class is pure numerics; time is charged by the
multi-place layer.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.validation import require
from repro.util.versioning import next_version


class Vector:
    """A dense column vector of length ``n``."""

    __slots__ = ("n", "data", "version")

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=np.float64)
        require(data.ndim == 1, f"vector needs a 1-D array, got {data.ndim}-D")
        self.data = np.ascontiguousarray(data)
        self.n = len(self.data)
        self.version = next_version()

    # -- constructors ------------------------------------------------------

    @classmethod
    def make(cls, n: int) -> "Vector":
        """A zero vector of length *n*."""
        return cls(np.zeros(n))

    @classmethod
    def of(cls, values) -> "Vector":
        """Build from any 1-D array-like."""
        return cls(np.asarray(values, dtype=np.float64))

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "Vector":
        """Uniform [0, 1) entries."""
        return cls(rng.random(n))

    # -- storage -----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy(self) -> "Vector":
        return Vector(self.data.copy())

    def touch(self) -> None:
        """Mark this vector dirty before an in-place write.

        If the backing array is frozen inside a snapshot (copy-on-write),
        detach from it by copying first; the snapshot keeps the frozen
        array, the live vector gets a private writable one.
        """
        if not self.data.flags.writeable:
            self.data = self.data.copy()
        self.version = next_version()

    def freeze_view(self) -> "Vector":
        """Freeze the backing array and return a snapshot alias sharing it.

        The returned vector and ``self`` share the (now read-only) array;
        the next mutation of ``self`` goes through :meth:`touch` and copies
        it out, leaving the snapshot's bytes untouched.
        """
        self.data.setflags(write=False)
        return Vector(self.data)

    def payload_arrays(self):
        """The backing arrays (checksum / corruption protocol)."""
        return (self.data,)

    # -- cell-wise ops --------------------------------------------------------

    def fill(self, value: float) -> "Vector":
        """Set every cell to *value*."""
        self.touch()
        self.data.fill(value)
        return self

    def scale(self, alpha: float) -> "Vector":
        """In-place ``self *= alpha``."""
        self.touch()
        self.data *= alpha
        return self

    def cell_add(self, other: "Vector | float") -> "Vector":
        """In-place element-wise add of a vector or scalar."""
        self.touch()
        if isinstance(other, Vector):
            require(other.n == self.n, "length mismatch in cell_add")
            self.data += other.data
        else:
            self.data += float(other)
        return self

    def cell_sub(self, other: "Vector | float") -> "Vector":
        """In-place element-wise subtract."""
        self.touch()
        if isinstance(other, Vector):
            require(other.n == self.n, "length mismatch in cell_sub")
            self.data -= other.data
        else:
            self.data -= float(other)
        return self

    def cell_mult(self, other: "Vector") -> "Vector":
        """In-place Hadamard product."""
        require(other.n == self.n, "length mismatch in cell_mult")
        self.touch()
        self.data *= other.data
        return self

    def axpy(self, alpha: float, x: "Vector") -> "Vector":
        """In-place ``self += alpha * x``."""
        require(x.n == self.n, "length mismatch in axpy")
        self.touch()
        self.data += alpha * x.data
        return self

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Vector":
        """In-place vectorized elementwise transform."""
        self.touch()
        self.data[:] = fn(self.data)
        return self

    # -- reductions ------------------------------------------------------------

    def dot(self, other: "Vector") -> float:
        """Inner product."""
        require(other.n == self.n, "length mismatch in dot")
        return float(self.data @ other.data)

    def norm2(self) -> float:
        """Euclidean norm."""
        return float(np.linalg.norm(self.data))

    def sum(self) -> float:
        """Sum of all cells."""
        return float(self.data.sum())

    def max_abs_diff(self, other: "Vector") -> float:
        """Largest absolute element-wise difference."""
        require(other.n == self.n, "length mismatch")
        if self.n == 0:
            return 0.0
        return float(np.max(np.abs(self.data - other.data)))

    def equals_approx(self, other: "Vector", tol: float = 1e-9) -> bool:
        """True if all cells agree within *tol*."""
        return self.n == other.n and self.max_abs_diff(other) <= tol

    # -- sub-vector access -------------------------------------------------------

    def sub_vector(self, lo: int, hi: int) -> "Vector":
        """Copy of the half-open slice ``[lo:hi]``."""
        require(0 <= lo <= hi <= self.n, f"bad range [{lo},{hi}) for n={self.n}")
        return Vector(self.data[lo:hi].copy())

    def set_sub_vector(self, lo: int, block: "Vector") -> None:
        """Paste *block* starting at *lo*."""
        require(lo + block.n <= self.n, "block exceeds bounds")
        self.touch()
        self.data[lo : lo + block.n] = block.data

    def __repr__(self) -> str:
        return f"Vector(n={self.n})"
