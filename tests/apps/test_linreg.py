"""Tests for the LinReg application (both variants) against NumPy."""

import numpy as np
import pytest

from repro.apps.data import RegressionWorkload
from repro.apps.nonresilient.linreg import LinRegNonResilient
from repro.apps.resilient.linreg import LinRegResilient
from repro.resilience.executor import IterativeExecutor, NonResilientExecutor
from repro.runtime import CostModel, Runtime


def small_wl(iterations=25, features=12, examples=60):
    return RegressionWorkload(
        features=features,
        examples_per_place=examples,
        iterations=iterations,
        blocks_per_place=2,
    )


def make_rt(n=3):
    return Runtime(n, cost=CostModel.zero())


class TestAlgorithm:
    def test_cg_converges_to_normal_equations_solution(self):
        rt = make_rt(3)
        wl = small_wl(iterations=60)
        app = LinRegNonResilient(rt, wl)
        X = app.X.to_dense().data
        y = app.y.to_array()
        app.run()
        expected = np.linalg.solve(
            X.T @ X + wl.ridge_lambda * np.eye(wl.features), X.T @ y
        )
        assert np.allclose(app.model(), expected, atol=1e-6)

    def test_residual_decreases(self):
        rt = make_rt(2)
        app = LinRegNonResilient(rt, small_wl(iterations=10))
        norms = [app.norm_r2]
        for _ in range(10):
            app.step()
            norms.append(app.norm_r2)
        assert norms[-1] < norms[0] * 1e-2

    def test_result_independent_of_place_count(self):
        wl = small_wl(iterations=15)
        models = []
        for places in (2, 3):
            rt = make_rt(places)
            # Same total data: rescale per-place share so N is constant.
            wl_p = RegressionWorkload(
                features=wl.features,
                examples_per_place=120 // places,
                iterations=wl.iterations,
                blocks_per_place=2,
            )
            app = LinRegNonResilient(rt, wl_p)
            app.run()
            models.append(app.model())
        # Same logical N and D but different random blocks → only check both converge.
        assert all(np.isfinite(m).all() for m in models)

    def test_resilient_equals_nonresilient_without_failure(self):
        wl = small_wl(iterations=12)
        rt1, rt2 = make_rt(3), make_rt(3)
        a = LinRegNonResilient(rt1, wl)
        NonResilientExecutor(rt1, a).run()
        b = LinRegResilient(rt2, wl)
        IterativeExecutor(rt2, b, checkpoint_interval=5).run()
        assert np.array_equal(a.model(), b.model())

    def test_executor_counts(self):
        rt = make_rt(2)
        app = LinRegResilient(rt, small_wl(iterations=10))
        report = IterativeExecutor(rt, app, checkpoint_interval=4).run()
        assert report.iterations_executed == 10
        assert report.checkpoints == 3  # at 0, 4, 8

    def test_read_only_data_saved_once(self):
        rt = make_rt(2)
        app = LinRegResilient(rt, small_wl(iterations=10))
        ex = IterativeExecutor(rt, app, checkpoint_interval=4)
        report = ex.run()
        latest = ex.store.latest()
        assert app.X in latest.read_only
        assert app.y in latest.read_only
        assert app.w in latest.snapshots
        assert report.checkpoints == 3


class TestConvergenceTermination:
    def _wl(self, tol):
        return RegressionWorkload(
            features=12,
            examples_per_place=60,
            iterations=100,
            blocks_per_place=2,
            tolerance=tol,
        )

    def test_stops_early_when_converged(self):
        rt = make_rt(3)
        app = LinRegNonResilient(rt, self._wl(1e-8))
        app.run()
        assert app.is_finished()
        assert app.iteration < 100
        assert app.norm_r2 <= 1e-16 * app.initial_norm_r2

    def test_zero_tolerance_runs_to_iteration_cap(self):
        rt = make_rt(2)
        wl = RegressionWorkload(
            features=6, examples_per_place=30, iterations=5, blocks_per_place=2
        )
        app = LinRegNonResilient(rt, wl)
        app.run()
        assert app.iteration == 5

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            self._wl(-1.0)

    def test_convergence_survives_failure(self):
        # A failure mid-run must not change the converged answer, and the
        # recomputed residual keeps the convergence test meaningful.
        wl = self._wl(1e-8)
        ref_rt = make_rt(4)
        ref = LinRegNonResilient(ref_rt, wl)
        ref.run()

        rt = Runtime(4, cost=CostModel.zero(), resilient=True)
        from repro.apps.resilient.linreg import LinRegResilient
        from repro.resilience.executor import IterativeExecutor

        app = LinRegResilient(rt, wl)
        rt.injector.kill_at_iteration(2, iteration=5)
        IterativeExecutor(rt, app, checkpoint_interval=4).run()
        assert app.is_finished()
        assert np.allclose(app.model(), ref.model(), atol=1e-8)
