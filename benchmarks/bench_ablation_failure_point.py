"""Ablation — where the failure lands between checkpoints.

With checkpoints every 10 iterations, a failure at iteration 11 loses one
iteration of work while a failure at iteration 19 loses nine — the rework
term of Young's trade-off.  This ablation sweeps the failure iteration
across one checkpoint period (PageRank at 24 places) and verifies the
total-runtime sawtooth: cost grows with the distance from the last
checkpoint and resets after the next one.
"""

from _common import emit, results_path
from repro.bench import figures
from repro.bench.calibration import pagerank_bench_workload, pagerank_cost
from repro.apps.resilient import PageRankResilient
from repro.resilience.executor import IterativeExecutor
from repro.runtime import Runtime

PLACES = 24
FAILURE_POINTS = [11, 13, 15, 17, 19, 21]  # 21 is just past the ckpt at 20


def total_with_failure_at(iteration: int) -> float:
    rt = Runtime(PLACES, cost=pagerank_cost(), resilient=True)
    app = PageRankResilient(rt, pagerank_bench_workload(30))
    rt.injector.kill_at_iteration(PLACES // 2, iteration=iteration)
    report = IterativeExecutor(rt, app, checkpoint_interval=10).run()
    return report.total_time


def run_sweep():
    return {it: total_with_failure_at(it) for it in FAILURE_POINTS}


def test_ablation_failure_point(benchmark):
    totals = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["failure @ iter   total (s)   rework (iters past last ckpt)"]
    for it, total in totals.items():
        rework = it % 10
        lines.append(f"{it:14d}   {total:9.3f}   {rework}")
    csv = figures.write_csv(
        results_path("ablation_failure_point.csv"),
        FAILURE_POINTS,
        {"total_s": [totals[i] for i in FAILURE_POINTS]},
    )
    lines.append(f"series written to {csv}")
    emit(
        "Ablation — failure position within the checkpoint period (sawtooth)",
        "\n".join(lines),
    )

    # Monotone within the period: more iterations since the checkpoint →
    # more rework → longer total runtime.
    within = [totals[i] for i in (11, 13, 15, 17, 19)]
    assert all(a < b for a, b in zip(within, within[1:]))
    # The sawtooth resets after the next checkpoint: failing at 21 (1 iter
    # past the ckpt at 20) costs less than failing at 19 (9 iters past 10).
    assert totals[21] < totals[19]
