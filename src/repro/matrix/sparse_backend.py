"""Sparse kernel backend selection: ``scipy.sparse`` with a NumPy fallback.

``SparseCSR``/``SparseCSC`` own their compressed index arrays (the
repartitioned-restore paths need that), but the *kernels* — spmv, spmv_t,
dense products, format conversion — can be served either by hand-rolled
NumPy segment-sums or by ``scipy.sparse`` array views over the very same
``(indptr, indices, values)`` buffers (zero copy).  Both paths are
bit-identical on canonical (coalesced, column-sorted) matrices: scipy's
CSR matvec accumulates each row sequentially in index order, exactly the
order ``np.bincount`` uses, so golden timings and chaos parity hold on
either backend.

Selection, in precedence order:

1. ``set_backend(name)`` — programmatic / CLI (``--sparse-backend``).
2. ``REPRO_SPARSE_BACKEND`` environment variable.
3. ``auto`` — scipy when importable, else NumPy.

Valid names: ``auto``, ``scipy``, ``numpy``.  Requesting ``scipy`` when
scipy is not installed raises; ``auto`` silently falls back.
"""

from __future__ import annotations

import os
from typing import Optional

_VALID = ("auto", "scipy", "numpy")
_ENV_VAR = "REPRO_SPARSE_BACKEND"

#: Explicit override installed by ``set_backend``; ``None`` defers to the env.
_override: Optional[str] = None

try:  # scipy is optional: the NumPy kernels are a complete fallback.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised via the numpy backend
    _scipy_sparse = None


def scipy_available() -> bool:
    """Whether ``scipy.sparse`` is importable in this environment."""
    return _scipy_sparse is not None


def scipy_module():
    """The ``scipy.sparse`` module (``None`` when unavailable)."""
    return _scipy_sparse


def _resolve(name: str) -> str:
    if name not in _VALID:
        raise ValueError(
            f"unknown sparse backend {name!r}: expected one of {_VALID}"
        )
    if name == "auto":
        return "scipy" if scipy_available() else "numpy"
    if name == "scipy" and not scipy_available():
        raise RuntimeError(
            "sparse backend 'scipy' requested but scipy is not installed"
        )
    return name


def set_backend(name: Optional[str]) -> str:
    """Install a process-wide backend override and return the resolved name.

    ``None`` clears the override (selection falls back to the environment
    variable / auto-detection).
    """
    global _override
    if name is None:
        _override = None
    else:
        _resolve(name)  # validate eagerly so bad names fail at the switch
        _override = name
    return refresh_from_env()


def active_backend() -> str:
    """The resolved backend name: ``"scipy"`` or ``"numpy"``."""
    if _override is not None:
        return _resolve(_override)
    return _resolve(os.environ.get(_ENV_VAR, "auto"))


def refresh_from_env() -> str:
    """Re-resolve the backend (after mutating ``REPRO_SPARSE_BACKEND``)."""
    global USE_SCIPY
    name = active_backend()
    USE_SCIPY = name == "scipy"
    return name


def use_scipy() -> bool:
    """Whether kernel call sites should dispatch to scipy.

    The decision is resolved once (at import / ``set_backend`` /
    ``refresh_from_env``) and cached in the module flag ``USE_SCIPY`` so the
    per-kernel-call cost is a single attribute read.
    """
    return USE_SCIPY


#: Cached resolution of the backend choice; kernels read this directly.
USE_SCIPY = False
refresh_from_env()
