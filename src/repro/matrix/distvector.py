"""``DistVector`` — a vector partitioned into one segment per place.

The partition is an arbitrary contiguous :class:`~repro.matrix.grid.Partition1D`
(one segment per group place); the default is GML's near-even split.  The
distributed matvec writes into a DistVector whose partition is *aligned* to
the matrix's per-place row spans, so results stay local.

Restore semantics follow §IV-B2: with an unchanged partition each place
reloads its whole segment (block-by-block); with a changed partition each
new segment is assembled from the overlapping sub-ranges of old segments.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.matrix.grid import Partition1D
from repro.matrix.multiplace import MultiPlaceObject
from repro.matrix.random import random_vector
from repro.matrix.vector import Vector
from repro.resilience.snapshot import DistObjectSnapshot
from repro.runtime.comm import flat_gather
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.validation import check_positive, require


class DistVector(MultiPlaceObject):
    """A length-``n`` vector with one contiguous segment per member place."""

    def __init__(
        self,
        runtime: Runtime,
        n: int,
        group: PlaceGroup,
        partition: Optional[Partition1D] = None,
    ):
        check_positive(n, "n")
        super().__init__(runtime, group, "DistVector")
        self.n = n
        self.partition = partition if partition is not None else Partition1D.even(n, group.size)
        require(
            self.partition.num_segments == group.size,
            "partition must have one segment per group place",
        )
        require(self.partition.n == n, "partition length mismatch")
        self._allocate()

    @classmethod
    def make(
        cls,
        runtime: Runtime,
        n: int,
        group: Optional[PlaceGroup] = None,
        partition: Optional[Partition1D] = None,
    ) -> "DistVector":
        """GML-style factory over *group* (defaults to the world)."""
        return cls(runtime, n, group if group is not None else runtime.world, partition)

    def _allocate(self) -> None:
        key = self.heap_key
        sizes = self.partition.sizes
        group = self.group

        def alloc(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            ctx.heap.put(key, Vector.make(sizes[index]))

        self.runtime.finish_all(group, alloc, label=f"{self.name}:alloc")

    # -- segment access -------------------------------------------------------

    def segment_range(self, index: int):
        """Global half-open range of the segment at group index *index*."""
        return self.partition.range_of(index)

    def segment(self, index: int) -> Vector:
        """Library-internal: the live segment at a group index."""
        return self.payload_at_index(index)

    @property
    def nbytes_total(self) -> int:
        return self.n * 8

    def max_segment_nbytes(self) -> int:
        """Bytes of the largest segment (per-sender gather payload)."""
        return max(self.partition.sizes) * 8 if self.partition.sizes else 0

    # -- initialization -----------------------------------------------------

    def init(self, value: float) -> "DistVector":
        """Set every cell to *value*."""
        return self._cellwise(lambda seg, lo, hi: seg.fill(value), label="init")

    def init_random(self, seed: int, tag: int = 0) -> "DistVector":
        """Deterministic random fill, independent of the partition.

        Each place writes the global vector's slice covering its segment,
        so the logical vector is identical under any place count — required
        for failure-vs-failure-free comparisons.
        """
        full = random_vector(seed, self.n, tag)
        return self._cellwise(
            lambda seg, lo, hi: seg.set_sub_vector(0, Vector(full[lo:hi])),
            label="init_random",
        )

    # -- cell-wise operations ---------------------------------------------------

    def _cellwise(
        self,
        fn: Callable[[Vector, int, int], None],
        flops_per_cell: float = 1.0,
        label: str = "cellwise",
    ) -> "DistVector":
        group, key = self.group, self.heap_key
        partition = self.partition
        charged = self.runtime.cost.flop_time != 0.0

        def task(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            lo, hi = partition.range_of(index)
            fn(ctx.heap.get(key), lo, hi)
            if charged:
                ctx.charge_flops(flops_per_cell * (hi - lo))

        self.runtime.finish_all(group, task, label=f"{self.name}:{label}")
        return self

    def scale(self, alpha: float) -> "DistVector":
        """``self *= alpha``."""
        return self._cellwise(lambda seg, lo, hi: seg.scale(alpha), label="scale")

    def fill(self, value: float) -> "DistVector":
        """Set every cell to *value*."""
        return self._cellwise(lambda seg, lo, hi: seg.fill(value), label="fill")

    def map(self, fn: Callable[[np.ndarray], np.ndarray], flops_per_cell: float = 1.0) -> "DistVector":
        """Vectorized elementwise transform of every segment."""
        return self._cellwise(
            lambda seg, lo, hi: seg.map(fn), flops_per_cell=flops_per_cell, label="map"
        )

    def _cellwise_pair(
        self,
        other: "DistVector",
        fn: Callable[[Vector, Vector], None],
        flops_per_cell: float = 1.0,
        label: str = "cellwise",
    ) -> "DistVector":
        self._check_aligned(other)
        group = self.group
        charged = self.runtime.cost.flop_time != 0.0

        def task(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            lo, hi = self.partition.range_of(index)
            fn(ctx.heap.get(self.heap_key), ctx.heap.get(other.heap_key))
            if charged:
                ctx.charge_flops(flops_per_cell * (hi - lo))

        self.runtime.finish_all(group, task, label=f"{self.name}:{label}")
        return self

    def cell_add(self, other: "DistVector | float") -> "DistVector":
        """``self += other`` (partition-aligned DistVector or scalar)."""
        if isinstance(other, DistVector):
            return self._cellwise_pair(other, lambda a, b: a.cell_add(b), label="cell_add")
        return self._cellwise(lambda seg, lo, hi: seg.cell_add(float(other)), label="cell_add")

    def cell_sub(self, other: "DistVector | float") -> "DistVector":
        """``self -= other``."""
        if isinstance(other, DistVector):
            return self._cellwise_pair(other, lambda a, b: a.cell_sub(b), label="cell_sub")
        return self._cellwise(lambda seg, lo, hi: seg.cell_sub(float(other)), label="cell_sub")

    def cell_mult(self, other: "DistVector") -> "DistVector":
        """Hadamard ``self *= other``."""
        return self._cellwise_pair(other, lambda a, b: a.cell_mult(b), label="cell_mult")

    def axpy(self, alpha: float, x: "DistVector") -> "DistVector":
        """``self += alpha * x``."""
        return self._cellwise_pair(
            x, lambda a, b: a.axpy(alpha, b), flops_per_cell=2.0, label="axpy"
        )

    def copy_from(self, other: "DistVector") -> "DistVector":
        """Overwrite this vector with a partition-aligned peer."""
        return self._cellwise_pair(other, lambda a, b: a.set_sub_vector(0, b), label="copy_from")

    def _check_aligned(self, other: "DistVector") -> None:
        require(other.n == self.n, "DistVector length mismatch")
        require(other.group == self.group, "DistVector operands on different groups")
        require(other.partition == self.partition, "DistVector partitions differ")

    # -- reductions --------------------------------------------------------------

    def dot(self, dup) -> float:
        """Inner product with a :class:`DupVector` over the same group.

        Each place dots its segment against its local slice of the
        duplicate (no data motion), then a scalar all-reduce combines the
        partials — GML's ``U.dot(P)`` from Listing 2.
        """
        from repro.matrix.dupvector import DupVector

        require(isinstance(dup, DupVector), "dot expects a DupVector operand")
        require(dup.n == self.n, "length mismatch in dot")
        require(dup.group == self.group, "operands on different groups")
        group = self.group

        def task(ctx: PlaceContext) -> float:
            index = group.index_of(ctx.place)
            lo, hi = self.partition.range_of(index)
            seg: Vector = ctx.heap.get(self.heap_key)
            full: Vector = ctx.heap.get(dup.heap_key)
            ctx.charge_flops(2 * (hi - lo))
            return float(seg.data @ full.data[lo:hi])

        partials = self.runtime.finish_all(group, task, ret_bytes=8, label=f"{self.name}:dot")
        # The per-place partials ride back on the finish termination
        # messages; the scalar is folded at the finish home (GML's reduce).
        return float(sum(p for p in partials if p is not None))

    def dot_dist(self, other: "DistVector") -> float:
        """Inner product of two partition-aligned DistVectors."""
        self._check_aligned(other)
        group = self.group

        def task(ctx: PlaceContext) -> float:
            a: Vector = ctx.heap.get(self.heap_key)
            b: Vector = ctx.heap.get(other.heap_key)
            ctx.charge_flops(2 * a.n)
            return a.dot(b)

        partials = self.runtime.finish_all(group, task, ret_bytes=8, label=f"{self.name}:dot")
        return float(sum(p for p in partials if p is not None))

    def norm2(self) -> float:
        """Euclidean norm."""
        return float(np.sqrt(max(self.dot_dist(self), 0.0)))

    def sum(self) -> float:
        """Sum of all cells (segment sums + scalar all-reduce)."""
        group = self.group

        def task(ctx: PlaceContext) -> float:
            seg: Vector = ctx.heap.get(self.heap_key)
            ctx.charge_flops(seg.n)
            return seg.sum()

        partials = self.runtime.finish_all(group, task, ret_bytes=8, label=f"{self.name}:sum")
        return float(sum(p for p in partials if p is not None))

    # -- gather (Listing 2's ``GP.copyTo(P.local())``) ---------------------------

    def copy_to(self, dest: Vector) -> None:
        """Gather all segments into a root-place local vector.

        The destination is the root copy of a DupVector (or any driver-side
        Vector); a subsequent ``DupVector.sync()`` re-broadcasts it.
        """
        require(dest.n == self.n, "gather destination length mismatch")
        flat_gather(
            self.runtime,
            self.group,
            root_index=0,
            nbytes_each=self.max_segment_nbytes(),
            label=f"{self.name}:copy_to",
        )
        dest.touch()
        for index in range(self.group.size):
            lo, hi = self.partition.range_of(index)
            dest.data[lo:hi] = self.segment(index).data

    def to_array(self) -> np.ndarray:
        """Driver-side gather of the full vector (testing/examples)."""
        out = Vector.make(self.n)
        self.copy_to(out)
        return out.data

    def to_dup(self, dup) -> None:
        """Gather into a DupVector and re-broadcast — every replica ends up
        holding the full distributed vector (GML's dist→dup conversion)."""
        self.copy_to(dup.local())
        dup.sync()

    def from_dup(self, dup) -> "DistVector":
        """Scatter a replica-consistent DupVector into the segments.

        The duplicate is already everywhere, so each place just copies its
        own slice locally — the cheap direction of the conversion.
        """
        from repro.matrix.dupvector import DupVector

        require(isinstance(dup, DupVector), "from_dup expects a DupVector")
        require(dup.n == self.n, "length mismatch in from_dup")
        require(dup.group == self.group, "operands on different groups")
        group = self.group

        def task(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            lo, hi = self.partition.range_of(index)
            seg: Vector = ctx.heap.get(self.heap_key)
            full: Vector = ctx.heap.get(dup.heap_key)
            seg.touch()
            seg.data[:] = full.data[lo:hi]
            ctx.charge_flops(hi - lo)

        self.runtime.finish_all(group, task, label=f"{self.name}:from_dup")
        return self

    # -- matvec (delegates to ops) -------------------------------------------

    def mult(self, matrix, dup) -> "DistVector":
        """``self = matrix @ dup`` — Listing 2's ``GP.mult(G, P)``."""
        from repro.matrix.ops import dist_block_matvec

        dist_block_matvec(matrix, dup, self)
        return self

    # -- resilience (Snapshottable) ----------------------------------------------

    def remake(
        self, new_group: PlaceGroup, partition: Optional[Partition1D] = None
    ) -> "DistVector":
        """Reallocate over *new_group*; default partition is recalculated even.

        One-segment-per-place classes "must recalculate the data grid" when
        the group size changes (§IV-A2).
        """
        self._release_payloads()
        self.group = new_group
        self.partition = (
            partition if partition is not None else Partition1D.even(self.n, new_group.size)
        )
        require(self.partition.num_segments == new_group.size, "partition/group size mismatch")
        self._allocate()
        return self

    def rehome(self, new_group: PlaceGroup) -> "DistVector":
        """Adopt a same-size group, allocating only the missing segments.

        The reconstruction path: survivors keep their live segments (and
        group indices); places that joined the group (spares holding no
        payload under this object's key) get zeroed segments for the
        caller to fill.  Idempotent — safe to re-run when a retry enlarges
        the replacement set.
        """
        require(new_group.size == self.group.size, "rehome cannot resize the group")
        self.group = new_group
        key, sizes = self.heap_key, self.partition.sizes

        def stale(index: int) -> bool:
            # Missing — or left over from an aborted recovery that had
            # this spare at a different index (wrong segment length).
            heap = self.runtime.heap_of(new_group[index].id)
            if not heap.contains(key):
                return True
            return len(heap.get(key).data) != sizes[index]

        missing = [index for index in range(new_group.size) if stale(index)]
        if not missing:
            return self
        sub = PlaceGroup([new_group[index] for index in missing])
        size_of = {new_group[index].id: sizes[index] for index in missing}

        def alloc(ctx: PlaceContext) -> None:
            ctx.heap.put(key, Vector.make(size_of[ctx.place.id]))

        self.runtime.finish_all(sub, alloc, label=f"{self.name}:rehome")
        return self

    def make_snapshot(self, base: Optional[DistObjectSnapshot] = None) -> DistObjectSnapshot:
        """Save each segment under its place index, doubly stored.

        With a compatible *base* (delta mode), unchanged segments are
        adopted by reference and changed ones saved copy-on-write.
        """
        snap = self._new_snapshot({"n": self.n, "sizes": list(self.partition.sizes)})
        base = self._delta_base(snap, base)
        group = self.group

        def save(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            seg: Vector = ctx.heap.get(self.heap_key)
            self._save_partition(
                snap, ctx, index, seg.version, base, seg.copy, seg.freeze_view
            )

        self.runtime.finish_all(group, save, label=f"{self.name}:snapshot")
        return snap

    def restore_snapshot(self, snapshot: DistObjectSnapshot) -> None:
        """Reload segments; repartition via overlap copies if needed."""
        require(snapshot.meta.get("n") == self.n, "snapshot is for a different vector")
        old_partition = Partition1D(self.n, snapshot.meta["sizes"])
        group = self.group

        if old_partition == self.partition:
            # Unchanged partition: whole-segment (block-by-block) reload.
            def load(ctx: PlaceContext) -> None:
                index = group.index_of(ctx.place)
                payload: Vector = snapshot.fetch(ctx, index)
                ctx.heap.get(self.heap_key).set_sub_vector(0, payload)

            self.runtime.finish_all(group, load, label=f"{self.name}:restore")
            return

        # Changed partition: each new segment pulls its overlap sub-ranges
        # from the old owners (§IV-B2's sub-block copies, 1-D case).
        overlaps = self.partition.overlaps(old_partition)
        by_new: dict = {}
        for new_seg, old_seg, start, end in overlaps:
            by_new.setdefault(new_seg, []).append((old_seg, start, end))

        def load_repartitioned(ctx: PlaceContext) -> None:
            index = group.index_of(ctx.place)
            lo, _hi = self.partition.range_of(index)
            seg: Vector = ctx.heap.get(self.heap_key)
            for old_seg, start, end in by_new.get(index, []):
                olo, _ohi = old_partition.range_of(old_seg)
                piece: Vector = snapshot.fetch(
                    ctx,
                    old_seg,
                    extract=lambda v, s=start - olo, e=end - olo: v.sub_vector(s, e),
                    extract_bytes=(end - start) * 8,
                )
                seg.set_sub_vector(start - lo, piece)

        self.runtime.finish_all(group, load_repartitioned, label=f"{self.name}:restore")
