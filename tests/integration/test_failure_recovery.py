"""End-to-end failure recovery: every app × every restoration mode.

The central correctness claim of the framework: a run that loses a place
and restores from the latest checkpoint produces the same result as a
failure-free run.  Replace-redundant and replace-elastic keep the exact
data layout, so results match *bitwise*; the shrink modes change partition
and reduction grouping, so results match to floating-point roundoff.
"""

import numpy as np
import pytest

from repro.apps.data import PageRankWorkload, RegressionWorkload
from repro.apps.nonresilient import (
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import LinRegResilient, LogRegResilient, PageRankResilient
from repro.resilience.executor import IterativeExecutor, RestoreMode
from repro.resilience.placement import SpreadPlacement
from repro.runtime import CostModel, Runtime

ITER = 12
REG_WL = RegressionWorkload(
    features=10, examples_per_place=48, iterations=ITER, blocks_per_place=2
)
PR_WL = PageRankWorkload(
    nodes_per_place=36, out_degree=4, iterations=ITER, blocks_per_place=2
)

APPS = [
    ("linreg", LinRegNonResilient, LinRegResilient, REG_WL, lambda a: a.model()),
    ("logreg", LogRegNonResilient, LogRegResilient, REG_WL, lambda a: a.model()),
    ("pagerank", PageRankNonResilient, PageRankResilient, PR_WL, lambda a: a.ranks()),
]

MODES = [
    RestoreMode.SHRINK,
    RestoreMode.SHRINK_REBALANCE,
    RestoreMode.REPLACE_REDUNDANT,
    RestoreMode.REPLACE_ELASTIC,
]

EXACT_MODES = {RestoreMode.REPLACE_REDUNDANT, RestoreMode.REPLACE_ELASTIC}


def baseline(NonRes, wl, get, places=4):
    rt = Runtime(places, cost=CostModel.zero())
    app = NonRes(rt, wl)
    app.run()
    return get(app)


@pytest.mark.parametrize("name,NonRes,Res,wl,get", APPS, ids=[a[0] for a in APPS])
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_single_failure_matches_failure_free_run(name, NonRes, Res, wl, get, mode):
    ref = baseline(NonRes, wl, get)
    spares = 1 if mode == RestoreMode.REPLACE_REDUNDANT else 0
    rt = Runtime(4, cost=CostModel.zero(), resilient=True, spares=spares)
    app = Res(rt, wl)
    rt.injector.kill_at_iteration(2, iteration=7)
    report = IterativeExecutor(rt, app, checkpoint_interval=5, mode=mode).run()
    assert report.restores == 1
    result = get(app)
    if mode in EXACT_MODES:
        assert np.array_equal(result, ref)
    else:
        assert np.allclose(result, ref, atol=1e-8)


@pytest.mark.parametrize("kill_at", [1, 5, 9, 11])
def test_failure_at_any_iteration(kill_at):
    ref = baseline(PageRankNonResilient, PR_WL, lambda a: a.ranks())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = PageRankResilient(rt, PR_WL)
    rt.injector.kill_at_iteration(3, iteration=kill_at)
    IterativeExecutor(rt, app, checkpoint_interval=5).run()
    assert np.allclose(app.ranks(), ref, atol=1e-8)


@pytest.mark.parametrize("victim", [1, 2, 3])
def test_any_nonzero_place_can_die(victim):
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_at_iteration(victim, iteration=6)
    IterativeExecutor(rt, app, checkpoint_interval=5).run()
    assert np.allclose(app.model(), ref, atol=1e-8)


def test_sequential_failures_shrink_to_two_places():
    ref = baseline(PageRankNonResilient, PR_WL, lambda a: a.ranks())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = PageRankResilient(rt, PR_WL)
    rt.injector.kill_at_iteration(1, iteration=3)
    rt.injector.kill_at_iteration(3, iteration=8)
    report = IterativeExecutor(rt, app, checkpoint_interval=3).run()
    assert report.restores == 2
    assert app.places.ids == [0, 2]
    assert np.allclose(app.ranks(), ref, atol=1e-8)


def test_failure_during_checkpoint_rolls_back_to_previous():
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = LinRegResilient(rt, REG_WL)
    executor = IterativeExecutor(rt, app, checkpoint_interval=4)
    # Find the phase at which the second checkpoint starts: run until
    # iteration 4 manually, then schedule a phase kill just after.
    store = executor.store
    app.checkpoint(store)
    for _ in range(4):
        app.step()
    # Kill during the next checkpoint's snapshot finishes.
    rt.injector.kill_at_phase(2, phase=rt.phase + 3)
    report = executor.run()
    assert report.restores >= 1
    assert np.allclose(app.model(), ref, atol=1e-8)
    assert not store.in_progress


def test_spares_used_then_fallback_to_shrink():
    ref = baseline(PageRankNonResilient, PR_WL, lambda a: a.ranks())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True, spares=1)
    app = PageRankResilient(rt, PR_WL)
    rt.injector.kill_at_iteration(1, iteration=3)  # replaced by spare (id 4)
    rt.injector.kill_at_iteration(2, iteration=8)  # spares exhausted → shrink
    report = IterativeExecutor(
        rt, app, checkpoint_interval=3, mode=RestoreMode.REPLACE_REDUNDANT
    ).run()
    assert report.restores == 2
    assert app.places.size == 3
    assert 4 in app.places.ids
    assert np.allclose(app.ranks(), ref, atol=1e-8)


def test_failed_spare_is_skipped():
    rt = Runtime(3, cost=CostModel.zero(), resilient=True, spares=2)
    app = PageRankResilient(rt, PR_WL)
    rt.kill(3)  # first spare dies before ever being used
    rt.injector.kill_at_iteration(1, iteration=4)
    IterativeExecutor(
        rt, app, checkpoint_interval=3, mode=RestoreMode.REPLACE_REDUNDANT
    ).run()
    assert app.places.ids == [0, 4, 2]  # second spare took over


def test_elastic_mode_grows_fresh_places_repeatedly():
    rt = Runtime(3, cost=CostModel.zero(), resilient=True)
    app = PageRankResilient(rt, PR_WL)
    rt.injector.kill_at_iteration(1, iteration=3)
    rt.injector.kill_at_iteration(2, iteration=7)
    report = IterativeExecutor(
        rt, app, checkpoint_interval=3, mode=RestoreMode.REPLACE_ELASTIC
    ).run()
    assert report.restores == 2
    assert app.places.size == 3
    assert set(app.places.ids) == {0, 3, 4}


def test_virtual_time_restore_modes_ordering():
    """The Table IV ordering at benchmark scale: shrink-rebalance
    (repartitioning + sub-block overlap copies) costs the most restore
    time and replace-redundant (same-index block reload, only the spare
    fetches remotely) the least."""
    from repro.bench import calibration

    wl = calibration.regression_bench_workload(iterations=8)
    times = {}
    for mode in (RestoreMode.SHRINK, RestoreMode.SHRINK_REBALANCE, RestoreMode.REPLACE_REDUNDANT):
        spares = 1 if mode == RestoreMode.REPLACE_REDUNDANT else 0
        rt = Runtime(24, cost=calibration.regression_cost(), resilient=True, spares=spares)
        app = LinRegResilient(rt, wl)
        rt.injector.kill_at_iteration(11, iteration=4)
        report = IterativeExecutor(rt, app, checkpoint_interval=3, mode=mode).run()
        times[mode] = report.restore_time
    assert times[RestoreMode.SHRINK_REBALANCE] > times[RestoreMode.SHRINK]
    assert times[RestoreMode.SHRINK] > times[RestoreMode.REPLACE_REDUNDANT]


def test_failure_mid_overlapped_checkpoint_recovers():
    # The kill lands inside the second checkpoint's capture while the
    # first checkpoint's backup transfers are still deferred in the
    # overlap scope: the attempt is cancelled, the deferred transfers are
    # drained, and recovery proceeds from the previous commit.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_during(2, "checkpoint", occurrence=2)
    executor = IterativeExecutor(
        rt, app, checkpoint_interval=4, checkpoint_mode="overlapped"
    )
    report = executor.run()
    assert report.restores == 1
    assert not executor.store.in_progress
    assert executor.store.latest_iteration >= 0
    assert np.allclose(app.model(), ref, atol=1e-8)


def test_spare_exhaustion_falls_back_to_shrink_rebalance():
    # Two consecutive failures (no re-checkpoint in between) with one
    # spare: the first is replaced, the second exhausts the pool and the
    # executor degrades to the configured SHRINK_REBALANCE fallback.  The
    # k=2 spread store keeps a copy of every partition alive through both
    # kills — the k=1 ring scheme would lose data here.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True, spares=1)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_at_iteration(1, iteration=4)  # replaced by spare (id 4)
    rt.injector.kill_at_iteration(2, iteration=5)  # spares exhausted
    report = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=3,
        mode=RestoreMode.REPLACE_REDUNDANT,
        spare_fallback=RestoreMode.SHRINK_REBALANCE,
        replicas=2,
        placement=SpreadPlacement(),
    ).run()
    assert report.restores == 2
    assert app.places.size == 3
    assert 4 in app.places.ids and 2 not in app.places.ids
    assert report.stable_fallback_reads == 0  # survived purely in memory
    assert np.allclose(app.model(), ref, atol=1e-8)


def test_aborted_restore_is_accounted():
    # A second failure strikes in the middle of the restore: the executor
    # records the aborted attempt separately and retries until recovery
    # completes, rolling back to a committed iteration.
    ref = baseline(LinRegNonResilient, REG_WL, lambda a: a.model())
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_at_iteration(1, iteration=4)
    rt.injector.kill_during(2, "restore")
    report = IterativeExecutor(
        rt, app, checkpoint_interval=3, replicas=2, placement=SpreadPlacement()
    ).run()
    assert report.aborted_restores == 1
    assert len(report.aborted_restore_durations) == 1
    assert report.restores == 1
    assert report.restored_iterations == [3]
    assert report.failures_observed >= 2
    assert report.pending_kills == []
    assert app.places.ids == [0, 3]
    assert np.allclose(app.model(), ref, atol=1e-8)


def test_unfired_kills_reported_as_pending():
    rt = Runtime(4, cost=CostModel.zero(), resilient=True)
    app = LinRegResilient(rt, REG_WL)
    rt.injector.kill_at_iteration(2, iteration=999)  # never reached
    report = IterativeExecutor(rt, app, checkpoint_interval=3).run()
    assert len(report.pending_kills) == 1
    assert report.pending_kills[0].place_id == 2
    assert report.failures_observed == 0
