"""Incremental checkpointing under chaos, and the parallel campaign runner.

Acceptance bar for the delta-checkpointing PR:

* 200-schedule campaigns per app run entirely in delta mode with zero
  recovery-invariant violations — a delta restore is indistinguishable
  from a full one under arbitrary kill schedules;
* a property sweep over random kill schedules shows the delta-mode final
  state is **bitwise** identical to full mode for every app, replication
  level k in {1, 2} and the stable-storage tier;
* the process-pool campaign runner produces bitwise-identical outcomes
  to the serial loop (parallelism changes wall clock only).
"""

import numpy as np
import pytest

from repro.chaos import (
    CHAOS_APPS,
    CampaignConfig,
    make_schedule,
    run_campaign,
)
from repro.resilience.executor import (
    IterativeExecutor,
    NonResilientExecutor,
    RestoreMode,
)
from repro.runtime.cost import CostModel
from repro.runtime.exceptions import DataLossError
from repro.runtime.runtime import Runtime

SCHEDULES = 200


def _assert_clean(result):
    assert result.violations == [], "\n".join(
        f"#{o.index} [{o.kills}] {o.detail}" for o in result.violations
    )
    assert len(result.outcomes) == SCHEDULES
    assert result.counts().get("recovered", 0) > 0


@pytest.mark.parametrize("app", ["linreg", "pagerank"])
def test_delta_campaign_in_memory(app):
    result = run_campaign(
        CampaignConfig(
            app=app,
            schedules=SCHEDULES,
            seed=11,
            replicas=2,
            placement="spread",
            ckpt_delta=True,
        )
    )
    _assert_clean(result)


@pytest.mark.parametrize("app", ["linreg", "pagerank"])
def test_delta_campaign_stable_fallback(app):
    result = run_campaign(
        CampaignConfig(
            app=app,
            schedules=SCHEDULES,
            seed=23,
            replicas=1,
            placement="ring",
            stable_fallback=True,
            ckpt_delta=True,
        )
    )
    _assert_clean(result)
    assert result.counts().get("data_loss", 0) == 0


def test_delta_campaign_matches_full_campaign_statuses():
    # Delta checkpointing changes what a checkpoint costs, never what it
    # contains: the same schedules succeed, recover or lose data.
    base = run_campaign(
        CampaignConfig(app="linreg", schedules=60, seed=19, replicas=2,
                       placement="spread")
    )
    delta = run_campaign(
        CampaignConfig(app="linreg", schedules=60, seed=19, replicas=2,
                       placement="spread", ckpt_delta=True)
    )
    assert delta.violations == []
    assert [o.status for o in delta.outcomes] == [o.status for o in base.outcomes]


# -- delta == full, bitwise, under random kills -------------------------------


def _outcome(app_name, config_kw, kills, mode, checkpoint_mode, delta):
    """Final result of one resilient run (or the DataLossError message)."""
    _, res_cls, wl_factory, result_of = CHAOS_APPS[app_name]
    rt = Runtime(6, cost=CostModel.zero(), resilient=True)
    app = res_cls(rt, wl_factory(30))
    for kill in kills:
        rt.injector.add(kill)
    executor = IterativeExecutor(
        rt,
        app,
        checkpoint_interval=5,
        mode=mode,
        checkpoint_mode=checkpoint_mode,
        delta=delta,
        **config_kw,
    )
    try:
        report = executor.run()
    except DataLossError as err:
        return ("loss", str(err))
    return ("ok", np.asarray(result_of(app)), report.restores, report.checkpoints)


STORE_CONFIGS = [
    {"replicas": 1},
    {"replicas": 2},
    {"replicas": 1, "stable_fallback": True},
]


@pytest.mark.parametrize("app_name", sorted(CHAOS_APPS))
@pytest.mark.parametrize("config_kw", STORE_CONFIGS, ids=["k1", "k2", "k1+disk"])
def test_delta_restore_bitwise_equals_full(app_name, config_kw):
    # Random mutation patterns (the apps' own 30-iteration trajectories)
    # with kills at arbitrary points: the delta-mode run must end in a
    # final state bitwise identical to the full-mode run, restores and
    # checkpoint counts included.
    for index in range(4):
        rng = np.random.default_rng([97, index])
        kills = make_schedule(rng, places=6, iterations=30)
        mode = (RestoreMode.SHRINK, RestoreMode.SHRINK_REBALANCE)[
            int(rng.integers(2))
        ]
        checkpoint_mode = "overlapped" if rng.integers(2) else "blocking"
        full = _outcome(app_name, config_kw, kills, mode, checkpoint_mode, False)
        delta = _outcome(app_name, config_kw, kills, mode, checkpoint_mode, True)
        assert full[0] == delta[0], (index, full, delta)
        if full[0] == "ok":
            assert np.array_equal(full[1], delta[1]), index
            assert full[2:] == delta[2:], index


def test_failure_free_delta_matches_nonresilient_baseline():
    for app_name in sorted(CHAOS_APPS):
        nonres_cls, res_cls, wl_factory, result_of = CHAOS_APPS[app_name]
        rt = Runtime(6, cost=CostModel.zero())
        base_app = nonres_cls(rt, wl_factory(30))
        NonResilientExecutor(rt, base_app).run()
        rt2 = Runtime(6, cost=CostModel.zero(), resilient=True)
        app = res_cls(rt2, wl_factory(30))
        IterativeExecutor(rt2, app, checkpoint_interval=5, delta=True).run()
        assert np.allclose(
            np.asarray(result_of(app)), np.asarray(result_of(base_app)),
            rtol=1e-12, atol=0,
        )


# -- parallel campaign runner --------------------------------------------------


def _flatten(result):
    return [
        (o.index, o.kills, o.status, o.violations, o.detail)
        for o in result.outcomes
    ]


@pytest.mark.parametrize("ckpt_delta", [False, True], ids=["full", "delta"])
def test_parallel_campaign_bitwise_identical_to_serial(ckpt_delta):
    cfg = CampaignConfig(
        app="pagerank",
        schedules=24,
        seed=5,
        replicas=2,
        placement="spread",
        ckpt_delta=ckpt_delta,
    )
    serial = run_campaign(cfg)
    parallel = run_campaign(cfg, jobs=2)
    assert _flatten(serial) == _flatten(parallel)
    assert serial.summary() == parallel.summary()


def test_parallel_campaign_oversubscribed_pool():
    # More workers than schedules must neither deadlock nor reorder.
    cfg = CampaignConfig(app="linreg", schedules=3, seed=8)
    assert _flatten(run_campaign(cfg, jobs=8)) == _flatten(run_campaign(cfg))
