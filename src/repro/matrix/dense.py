"""Single-place dense matrices — GML's ``DenseMatrix``.

A thin, explicit wrapper over a 2-D float64 NumPy array with GML's cell-wise
and multiplication API.  Single-place classes are pure numerics: virtual-time
charging happens in the multi-place layer, which knows the distribution.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.util.validation import require
from repro.util.versioning import next_version


class DenseMatrix:
    """An ``m × n`` dense matrix in full storage."""

    __slots__ = ("m", "n", "data", "version")

    def __init__(self, data: np.ndarray):
        require(data.ndim == 2, f"dense matrix needs a 2-D array, got {data.ndim}-D")
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.m, self.n = self.data.shape
        self.version = next_version()

    # -- constructors ----------------------------------------------------

    @classmethod
    def make(cls, m: int, n: int) -> "DenseMatrix":
        """A zero-initialized ``m × n`` matrix."""
        return cls(np.zeros((m, n)))

    @classmethod
    def from_function(cls, m: int, n: int, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> "DenseMatrix":
        """Build from a vectorized function of global index arrays."""
        ii, jj = np.meshgrid(np.arange(m), np.arange(n), indexing="ij")
        return cls(np.asarray(fn(ii, jj), dtype=np.float64))

    @classmethod
    def random(cls, m: int, n: int, rng: np.random.Generator) -> "DenseMatrix":
        """Uniform [0, 1) entries from the given generator."""
        return cls(rng.random((m, n)))

    # -- shape / storage ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy(self) -> "DenseMatrix":
        return DenseMatrix(self.data.copy())

    def touch(self) -> None:
        """Mark this matrix dirty before an in-place write.

        Detaches from a frozen (snapshot-shared) backing array by copying
        it, then bumps the mutation version.
        """
        if not self.data.flags.writeable:
            self.data = self.data.copy()
        self.version = next_version()

    def freeze_view(self) -> "DenseMatrix":
        """Freeze the backing array and return a snapshot alias sharing it."""
        self.data.setflags(write=False)
        return DenseMatrix(self.data)

    def payload_arrays(self) -> Tuple[np.ndarray, ...]:
        """Backing arrays for snapshot checksumming (``repro.util.checksum``)."""
        return (self.data,)

    # -- cell-wise operations ------------------------------------------------

    def scale(self, alpha: float) -> "DenseMatrix":
        """In-place ``self *= alpha`` (returns self for chaining, GML style)."""
        self.touch()
        self.data *= alpha
        return self

    def cell_add(self, other: "DenseMatrix | float") -> "DenseMatrix":
        """In-place element-wise add of a matrix or scalar."""
        self.touch()
        if isinstance(other, DenseMatrix):
            require(other.shape == self.shape, "shape mismatch in cell_add")
            self.data += other.data
        else:
            self.data += float(other)
        return self

    def cell_sub(self, other: "DenseMatrix | float") -> "DenseMatrix":
        """In-place element-wise subtract of a matrix or scalar."""
        self.touch()
        if isinstance(other, DenseMatrix):
            require(other.shape == self.shape, "shape mismatch in cell_sub")
            self.data -= other.data
        else:
            self.data -= float(other)
        return self

    def cell_mult(self, other: "DenseMatrix") -> "DenseMatrix":
        """In-place Hadamard product."""
        require(other.shape == self.shape, "shape mismatch in cell_mult")
        self.touch()
        self.data *= other.data
        return self

    def fill(self, value: float) -> "DenseMatrix":
        """Set every cell to *value*."""
        self.touch()
        self.data.fill(value)
        return self

    # -- multiplication ----------------------------------------------------

    def mult(self, a: "DenseMatrix", b: "DenseMatrix") -> "DenseMatrix":
        """``self = a @ b`` (GML's accumulate-free form)."""
        require(a.n == b.m, f"inner dims mismatch: {a.shape} @ {b.shape}")
        require(self.shape == (a.m, b.n), "output shape mismatch")
        self.touch()
        np.matmul(a.data, b.data, out=self.data)
        return self

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``self @ x`` for a 1-D vector."""
        require(x.shape == (self.n,), f"matvec operand must be length {self.n}")
        return self.data @ x

    def t_matvec(self, x: np.ndarray) -> np.ndarray:
        """``self.T @ x`` for a 1-D vector."""
        require(x.shape == (self.m,), f"t_matvec operand must be length {self.m}")
        return self.data.T @ x

    def transpose(self) -> "DenseMatrix":
        """A new transposed matrix."""
        return DenseMatrix(self.data.T.copy())

    # -- norms / comparison ----------------------------------------------------

    def norm_f(self) -> float:
        """Frobenius norm."""
        return float(np.linalg.norm(self.data))

    def max_abs_diff(self, other: "DenseMatrix") -> float:
        """Largest absolute element-wise difference."""
        require(other.shape == self.shape, "shape mismatch in max_abs_diff")
        if self.data.size == 0:
            return 0.0
        return float(np.max(np.abs(self.data - other.data)))

    def equals_approx(self, other: "DenseMatrix", tol: float = 1e-9) -> bool:
        """True if all cells agree within *tol*."""
        return self.shape == other.shape and self.max_abs_diff(other) <= tol

    # -- sub-matrix access (restore paths) -------------------------------------

    def sub_matrix(self, r0: int, r1: int, c0: int, c1: int) -> "DenseMatrix":
        """Copy of the half-open region ``[r0:r1, c0:c1]``."""
        require(0 <= r0 <= r1 <= self.m, f"bad row range [{r0},{r1}) for m={self.m}")
        require(0 <= c0 <= c1 <= self.n, f"bad col range [{c0},{c1}) for n={self.n}")
        return DenseMatrix(self.data[r0:r1, c0:c1].copy())

    def set_sub_matrix(self, r0: int, c0: int, block: "DenseMatrix") -> None:
        """Paste *block* with its top-left at ``(r0, c0)``."""
        require(r0 + block.m <= self.m and c0 + block.n <= self.n, "block exceeds bounds")
        self.touch()
        self.data[r0 : r0 + block.m, c0 : c0 + block.n] = block.data

    def __repr__(self) -> str:
        return f"DenseMatrix({self.m}x{self.n})"


# -- flop-count formulas used by the multi-place layer for time charging ----

def flops_matvec(m: int, n: int) -> int:
    """Flops of a dense ``m × n`` matrix-vector product."""
    return 2 * m * n


def flops_matmul(m: int, k: int, n: int) -> int:
    """Flops of a dense ``(m × k) @ (k × n)`` product."""
    return 2 * m * k * n


def flops_cellwise(m: int, n: int = 1) -> int:
    """Flops of one element-wise pass over an ``m × n`` operand."""
    return m * n
