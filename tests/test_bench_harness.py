"""Tests for the benchmark harness (small axes so they run quickly)."""


from repro.bench import calibration, figures
from repro.bench.harness import (
    APP_REGISTRY,
    run_checkpoint_sweep,
    run_overhead_sweep,
    run_restore_sweep,
    table4_from_reports,
)


class TestCalibration:
    def test_places_axis_matches_paper(self):
        axis = calibration.places_axis()
        assert axis[0] == 2 and axis[-1] == 44
        assert axis == [2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44]

    def test_cluster_profile_valid(self):
        from repro.runtime.cost import validate_cost_model

        assert validate_cost_model(calibration.cluster_2015()) is None

    def test_scales_applied(self):
        assert calibration.regression_cost().logical_scale == calibration.REGRESSION_SCALE
        assert calibration.pagerank_cost().logical_scale == calibration.PAGERANK_SCALE

    def test_registry_covers_all_apps(self):
        assert set(APP_REGISTRY) == {"linreg", "logreg", "pagerank", "gnmf"}


class TestOverheadSweep:
    def test_produces_both_series(self):
        s = run_overhead_sweep("linreg", places_list=[2, 4], iterations=3)
        assert s.places == [2, 4]
        assert set(s.values) == {"non-resilient finish", "resilient finish"}
        assert all(len(v) == 2 for v in s.values.values())

    def test_resilient_costs_more(self):
        s = run_overhead_sweep("pagerank", places_list=[4], iterations=3)
        assert s.values["resilient finish"][0] >= s.values["non-resilient finish"][0]


class TestCheckpointSweep:
    def test_three_checkpoints_per_run(self):
        s = run_checkpoint_sweep("linreg", places_list=[3], iterations=30)
        assert s.values["checkpoints"] == [3.0]
        assert s.values["mean checkpoint (ms)"][0] > 0


class TestRestoreSweep:
    def test_all_modes_and_baseline(self):
        out = run_restore_sweep(
            "pagerank", places_list=[4], iterations=12, checkpoint_interval=5,
            failure_iteration=7,
        )
        series = out["series"]
        assert set(series.values) == {
            "shrink",
            "shrink-rebalance",
            "replace-redundant",
            "non-resilient (no failure)",
        }
        t4 = table4_from_reports(out["reports"], places=4)
        for mode, row in t4.items():
            assert 0 <= row["C%"] <= 100
            assert 0 <= row["R%"] <= 100

    def test_failure_actually_happened(self):
        out = run_restore_sweep(
            "linreg", places_list=[4], iterations=12, checkpoint_interval=5,
            failure_iteration=7,
        )
        for by_places in out["reports"].values():
            assert by_places[4].restores == 1


class TestFigures:
    def test_series_table(self):
        table = figures.series_table([2, 4], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "places" in table
        assert len(table.splitlines()) == 3

    def test_ascii_chart(self):
        chart = figures.ascii_chart([2, 4], {"a": [1.0, 2.0]}, title="t")
        assert "t" in chart and "█" in chart

    def test_write_csv(self, tmp_path):
        path = figures.write_csv(
            str(tmp_path / "x.csv"), [2, 4], {"a": [1.0, 2.0]}
        )
        content = open(path).read().splitlines()
        assert content[0] == "places,a"
        assert content[1].startswith("2,")

    def test_comparison_line(self):
        line = figures.comparison_line("w", 100.0, 150.0)
        assert "1.50x" in line
