"""Tests for DupVector: replica consistency, ops, snapshot/restore."""

import numpy as np
import pytest

from repro.runtime import CostModel, DeadPlaceException, PlaceGroup, Runtime
from repro.matrix.dupvector import DupVector


def make_rt(n=4, **kwargs):
    return Runtime(n, cost=kwargs.pop("cost", CostModel.zero()), **kwargs)


class TestConstruction:
    def test_make_over_world(self):
        rt = make_rt()
        v = DupVector.make(rt, 5)
        assert v.group == rt.world
        assert np.all(v.to_array() == 0)

    def test_make_over_subgroup(self):
        rt = make_rt()
        g = PlaceGroup.of_ids([1, 3])
        v = DupVector.make(rt, 5, g)
        assert v.group == g
        # No payload on places outside the group.
        assert rt.heap_of(0).get_or(v.heap_key) is None

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            DupVector.make(make_rt(), 0)


class TestOps:
    def test_init_random_consistent(self):
        v = DupVector.make(make_rt(), 8).init_random(3)
        assert v.replicas_consistent()
        assert not np.all(v.to_array() == 0)

    def test_cellwise_keep_replicas_consistent(self):
        rt = make_rt()
        v = DupVector.make(rt, 6).init_random(1)
        w = DupVector.make(rt, 6).init(2.0)
        v.scale(3.0).cell_add(w).cell_sub(1.0).axpy(0.5, w)
        assert v.replicas_consistent()

    def test_arithmetic_matches_numpy(self):
        rt = make_rt()
        v = DupVector.make(rt, 6).init_random(1)
        w = DupVector.make(rt, 6).init_random(2)
        a, b = v.to_array(), w.to_array()
        v.scale(2.0).cell_add(w).axpy(-1.5, w)
        assert np.allclose(v.to_array(), 2 * a + b - 1.5 * b)

    def test_cell_mult_and_map(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init(3.0)
        w = DupVector.make(rt, 4).init(2.0)
        v.cell_mult(w).map(np.sqrt)
        assert np.allclose(v.to_array(), np.sqrt(6.0))

    def test_dot_and_norm(self):
        rt = make_rt()
        v = DupVector.make(rt, 3).init(2.0)
        assert v.dot(v) == pytest.approx(12.0)
        assert v.norm2() == pytest.approx(np.sqrt(12.0))

    def test_copy_from(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init_random(5)
        w = DupVector.make(rt, 4)
        w.copy_from(v)
        assert np.allclose(w.to_array(), v.to_array())

    def test_mismatched_operands(self):
        rt = make_rt()
        v = DupVector.make(rt, 4)
        w = DupVector.make(rt, 5)
        with pytest.raises(ValueError):
            v.cell_add(w)
        u = DupVector.make(rt, 4, PlaceGroup.of_ids([0, 1]))
        with pytest.raises(ValueError):
            v.cell_add(u)


class TestSync:
    def test_sync_propagates_root_update(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init(1.0)
        v.local().data[:] = [9, 8, 7, 6]  # driver-side update of the root copy
        assert not v.replicas_consistent()
        v.sync()
        assert v.replicas_consistent()
        assert np.allclose(v.payload_at_index(3).data, [9, 8, 7, 6])

    def test_reduce_sum(self):
        rt = make_rt(3)
        v = DupVector.make(rt, 2)
        # Each place holds a different partial.
        for i in range(3):
            v.payload_at_index(i).data[:] = [i, 10 * i]
        v.reduce_sum()
        assert v.replicas_consistent()
        assert np.allclose(v.to_array(), [3, 30])


class TestResilience:
    def test_ops_raise_on_dead_member(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init(1.0)
        rt.kill(2)
        with pytest.raises(DeadPlaceException):
            v.scale(2.0)

    def test_remake_over_survivors(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init(1.0)
        rt.kill(2)
        v.remake(rt.live_world())
        assert v.group.ids == [0, 1, 3]
        assert np.all(v.to_array() == 0)  # remake reallocates, data is gone
        v.init(5.0)
        assert v.replicas_consistent()

    def test_snapshot_restore_same_group(self):
        rt = make_rt()
        v = DupVector.make(rt, 6).init_random(7)
        ref = v.to_array()
        snap = v.make_snapshot()
        v.fill(0.0)
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), ref)
        assert v.replicas_consistent()

    def test_snapshot_survives_failure_and_shrink(self):
        rt = make_rt()
        v = DupVector.make(rt, 6).init_random(7)
        ref = v.to_array()
        snap = v.make_snapshot()
        rt.kill(1)
        v.remake(rt.live_world())
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), ref)
        assert v.replicas_consistent()

    def test_restore_rejects_larger_group(self):
        rt = make_rt(4)
        g = PlaceGroup.of_ids([0, 1])
        v = DupVector.make(rt, 4, g).init(1.0)
        snap = v.make_snapshot()
        v.remake(rt.world)
        with pytest.raises(ValueError):
            v.restore_snapshot(snap)

    def test_restore_checks_length(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init(1.0)
        snap = v.make_snapshot()
        w = DupVector.make(rt, 5)
        with pytest.raises(ValueError):
            w.restore_snapshot(snap)

    def test_snapshot_is_isolated_from_live_updates(self):
        rt = make_rt()
        v = DupVector.make(rt, 4).init(2.0)
        snap = v.make_snapshot()
        v.fill(9.0)  # later mutation must not corrupt the snapshot
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), 2.0)

    def test_destroy_frees_heap(self):
        rt = make_rt()
        v = DupVector.make(rt, 4)
        v.destroy()
        for pid in rt.world.ids:
            assert rt.heap_of(pid).get_or(v.heap_key) is None
