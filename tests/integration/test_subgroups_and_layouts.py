"""Integration tests for non-default groups, layouts and trace plumbing."""

import numpy as np
import pytest

from repro.apps.data import PageRankWorkload, RegressionWorkload
from repro.apps.nonresilient import LinRegNonResilient, PageRankNonResilient
from repro.apps.resilient import PageRankResilient
from repro.matrix.distblock import DistBlockMatrix
from repro.resilience.executor import IterativeExecutor
from repro.runtime import CostModel, PlaceGroup, Runtime


def make_rt(n=6):
    return Runtime(n, cost=CostModel.zero())


class TestAppsOnSubgroups:
    def test_linreg_on_a_subset_of_places(self):
        """Apps can run on an arbitrary subgroup — the §IV-A1 enabler."""
        rt = make_rt(6)
        wl = RegressionWorkload(
            features=8, examples_per_place=40, iterations=6, blocks_per_place=2
        )
        group = PlaceGroup.of_ids([0, 2, 4])
        app = LinRegNonResilient(rt, wl, group=group)
        app.run()
        assert np.isfinite(app.model()).all()
        # Non-member places hold no app data.
        assert rt.heap_of(1).get_or(app.X.heap_key) is None

    def test_resilient_app_on_subgroup_recovers(self):
        rt = Runtime(6, cost=CostModel.zero(), resilient=True)
        wl = PageRankWorkload(
            nodes_per_place=30, out_degree=3, iterations=8, blocks_per_place=2
        )
        group = PlaceGroup.of_ids([0, 1, 3, 5])
        ref_rt = make_rt(6)
        ref = PageRankNonResilient(ref_rt, wl, group=PlaceGroup.of_ids([0, 1, 3, 5]))
        ref.run()

        app = PageRankResilient(rt, wl, group=group)
        rt.injector.kill_at_iteration(3, iteration=4)
        IterativeExecutor(rt, app, checkpoint_interval=3).run()
        assert app.places.ids == [0, 1, 5]
        assert np.allclose(app.ranks(), ref.ranks(), atol=1e-8)
        # Place 2 was never involved and is untouched.
        assert rt.is_alive(2)


class TestSingleBlockPerPlaceApps:
    def test_blocks_per_place_one(self):
        rt = make_rt(4)
        wl = PageRankWorkload(
            nodes_per_place=24, out_degree=3, iterations=6, blocks_per_place=1
        )
        app = PageRankNonResilient(rt, wl)
        app.run()
        assert app.ranks().sum() == pytest.approx(1.0, abs=1e-9)


class TestPlaceGridLayout:
    def test_snapshot_restore_with_2d_place_grid(self):
        """The rowPlaces × colPlaces layout survives the restore paths."""
        rt = make_rt(6)
        g = DistBlockMatrix.make_dense(
            rt, 24, 18, 6, 3, row_places=3, col_places=2
        ).init_random(5)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        rt.kill(4)
        survivors = rt.live_world()
        # Shrink onto 5 places: the 2-D layout degrades to a grouped map.
        g.remake(survivors)
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    def test_2d_map_matvec(self):
        from repro.matrix.distvector import DistVector
        from repro.matrix.dupvector import DupVector
        from repro.matrix.ops import dist_block_matvec

        rt = make_rt(4)
        g = DistBlockMatrix.make_dense(
            rt, 16, 12, 4, 2, row_places=2, col_places=2
        ).init_random(3)
        x = DupVector.make(rt, 12).init_random(4)
        y = DistVector.make(rt, 16)
        dist_block_matvec(g, x, y)
        assert np.allclose(y.to_array(), g.to_dense().data @ x.to_array())


class TestTracePlumbing:
    def test_kill_and_finish_events_recorded(self):
        rt = Runtime(3, cost=CostModel.zero(), trace=True)
        rt.finish_all(rt.world, lambda ctx: None, label="traced")
        rt.kill(2)
        assert rt.trace.of_kind("finish")[-1].detail["label"] == "traced"
        assert rt.trace.of_kind("kill")[0].detail["place"] == 2

    def test_add_place_traced(self):
        rt = Runtime(2, cost=CostModel.zero(), trace=True)
        place = rt.add_place()
        assert rt.trace.of_kind("add_place")[0].detail["place"] == place.id

    def test_trace_disabled_by_default(self):
        rt = Runtime(2, cost=CostModel.zero())
        rt.finish_all(rt.world, lambda ctx: None)
        assert rt.trace.events == []
