"""Snapshot/restore for GML objects (paper §IV-B), generalized to tiers.

``Snapshottable`` is the paper's Listing 3 interface.  A
:class:`DistObjectSnapshot` stores an object's state as key/value pairs —
key = the place's *index* in the object's place group, value = that place's
data partition — in a **tiered, k-replica store**:

* tier 0: the primary copy in the owning place's heap;
* tiers 1..k: in-memory backup copies on the places chosen by a pluggable
  :class:`~repro.resilience.placement.ReplicaPlacement` policy (the paper's
  double store is ``backups=1`` with ring placement: one copy on the *next*
  place);
* final tier (opt-in ``stable_fallback=True``): a copy on the shared
  stable store, written through the engine's disk resource at checkpoint
  time and only read back when **every** in-memory copy of a partition has
  died with its places.

Saving costs one local copy, one engine-routed transfer per remote replica
(a fan-out from the owning place) and, with the fallback tier, one disk
write.  Loading prefers the primary, falls through the replicas in
placement order, and reaches the disk tier last; only when a key survives
in *no* tier does :meth:`DistObjectSnapshot.fetch` raise
:class:`DataLossError` — tested behaviour, not a corner we paper over.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.resilience.placement import ReplicaPlacement, RingPlacement
from repro.runtime.exceptions import (
    DataLossError,
    DeadPlaceException,
    SnapshotCorruptionError,
)
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import PlaceContext, Runtime
from repro.util.bytesize import memoized_nbytes, payload_nbytes
from repro.util.checksum import corrupt_payload, memoized_checksum
from repro.util.validation import require
from repro.util.versioning import freeze_payload

_snap_counter = itertools.count()


class Snapshottable(ABC):
    """The paper's Listing 3: objects that can save and restore themselves."""

    @abstractmethod
    def make_snapshot(self, base: Optional["DistObjectSnapshot"] = None) -> "DistObjectSnapshot":
        """Capture this object's distributed state into a resilient store.

        *base* (delta checkpointing) is the previous committed snapshot of
        the same object: partitions whose mutation version is unchanged
        since *base* are adopted from it by reference instead of being
        copied and re-hashed.  ``None`` forces a full save.
        """

    @abstractmethod
    def restore_snapshot(self, snapshot: "DistObjectSnapshot") -> None:
        """Reload this object's state (possibly onto a different group)."""


class DistObjectSnapshot:
    """Tiered in-memory key/value store for one GML object's partitions.

    Entries live in the place heaps under ``("snap", id, key)`` (primary)
    and ``("snapb", id, key, replica)`` (backups at the placement policy's
    offsets), so a place's death destroys exactly the copies it held.  With
    ``stable_fallback`` each partition is additionally written through the
    engine's shared disk and survives any set of place failures.

    ``meta`` carries object-specific restore metadata (the data grid, the
    block→place owner map, the vector partition) captured at snapshot time.
    """

    #: Sentinel "place id" returned by :meth:`locate` for the disk tier.
    STABLE_TIER = -1

    def __init__(
        self,
        runtime: Runtime,
        group: PlaceGroup,
        meta: Optional[Dict[str, Any]] = None,
        backups: int = 1,
        placement: Optional[ReplicaPlacement] = None,
        stable_fallback: bool = False,
    ):
        require(backups >= 0, "backups must be >= 0")
        self.runtime = runtime
        self.group = group
        self.snap_id = next(_snap_counter)
        self.meta: Dict[str, Any] = dict(meta or {})
        self.backups = backups
        self.placement = placement if placement is not None else RingPlacement()
        self._offsets = self.placement.offsets(backups, group.size)
        #: ``_backup_homes[replica - 1][key]`` — the modular placement
        #: arithmetic tabulated once (rebuilt when the group is rebound);
        #: the save/intact/delete loops hit it tens of times per key.
        self._backup_homes: List[List[Any]] = self._home_table()
        self.stable_fallback = stable_fallback
        self._stable: Dict[int, Any] = {}
        self._saved_keys: set = set()
        self.total_nbytes = 0.0
        #: Mutation-version token recorded per key at save time (the dirty
        #: test of delta checkpointing compares against these).
        self._versions: Dict[int, Any] = {}
        #: Keys adopted clean from a base snapshot (delta saves) and the
        #: bytes they would have cost under a full save.
        self.clean_keys: set = set()
        self.clean_nbytes = 0.0
        #: Restore reads that fell through every in-memory copy to disk.
        self.fallback_reads = 0
        #: CRC-32 recorded per key at save time (ground truth for verify).
        self._checksums: Dict[int, int] = {}
        #: ``key -> (payload, token)`` whose CRC has not been computed yet.
        #: Snapshot payloads are frozen (byte-immutable) for the snapshot's
        #: lifetime and corruption strikes replace heap entries with
        #: *copies*, so hashing the retained reference on first verify
        #: yields the same CRC the save would have — most checkpoints are
        #: deleted unverified, skipping the hash pass entirely.  The
        #: virtual-time charge stays at save (see :meth:`save_from`).
        self._crc_pending: Dict[int, Any] = {}
        #: ``(key, tier)`` copies known clean — verified copies are not
        #: re-hashed, so health polling stays timing-neutral.
        self._verified: set = set()
        #: ``(key, tier)`` copies that failed verification and were dropped.
        self.quarantined: List[Tuple[int, int]] = []

    # -- keys ------------------------------------------------------------

    def _primary_key(self, key: int) -> tuple:
        return ("snap", self.snap_id, key)

    def _backup_key(self, key: int, replica: int = 1) -> tuple:
        return ("snapb", self.snap_id, key, replica)

    def _home_table(self) -> List[List[Any]]:
        group, size = self.group, self.group.size
        return [
            [group[(key + offset) % size] for key in range(size)]
            for offset in self._offsets
        ]

    def _backup_place(self, key: int, replica: int):
        """The place holding the *replica*-th backup of *key*."""
        return self._backup_homes[replica - 1][key]

    # -- saving ------------------------------------------------------------

    def save_from(
        self, ctx: PlaceContext, key: int, payload: Any, token: Optional[Any] = None
    ) -> None:
        """Save one partition from within a finish task at the owning place.

        The caller must pass a payload that does not alias live *mutable*
        data: either an already-copied payload (full saves) or a
        copy-on-write ``freeze_view`` whose arrays the live object copies
        out of before its next mutation (delta saves).  The payload is
        frozen here in both cases — snapshot bytes are immutable for the
        snapshot's lifetime.  Charges one local copy, then fans the backup
        replicas out over the engine's transfer resources from a common
        issue time (the sends serialize on the owner's transmit side, the
        receivers absorb them concurrently), and finally one engine disk
        write when the stable fallback tier is enabled.

        *token* is the partition's mutation-version token; recording it is
        what lets the next delta save prove the partition clean.
        """
        if self.group.index_of(ctx.place) != key:
            # Message built lazily: this guard runs on every partition save.
            require(
                False,
                f"partition {key} must be saved from group index {key}, "
                f"not from {ctx.place}",
            )
        rt = self.runtime
        zero = rt.engine.zero_fast()
        freeze_payload(payload)
        # Sized after the freeze so the token-keyed memo applies (a re-save
        # of an unchanged partition skips the recursive measuring pass).
        nbytes = memoized_nbytes(payload, token)
        ctx.heap.put(self._primary_key(key), payload)
        if not zero:
            ctx.charge_memcpy(nbytes)
        fanout = []
        for replica in range(1, self.backups + 1):
            backup_place = self._backup_place(key, replica)
            if backup_place != ctx.place:
                fanout.append((backup_place.id, self._backup_key(key, replica)))
            else:
                # Single-place group: degenerate "replica" on the same
                # place.  The primary copy is forwarded by reference — the
                # bytes were already paid for once above, so no second
                # memcpy charge.
                ctx.heap.put(self._backup_key(key, replica), payload)
        if fanout:
            cost = rt.cost
            if zero:
                # All timing lands on 0.0; only liveness (checked in the
                # same order the per-destination transfers would) and the
                # stats trail remain, byte math expression-identical.
                alive = rt._alive
                for pid, _ in fanout:
                    if not alive.get(pid, False):
                        raise DeadPlaceException(pid)
                for pid, heap_key in fanout:
                    rt._heaps[pid].put(heap_key, payload)
            else:
                rt.engine.transfer_fanout(
                    ctx.place.id, [pid for pid, _ in fanout], nbytes, ctx.now
                )
                for pid, heap_key in fanout:
                    rt.heap_of(pid).put(heap_key, payload)
                rt.clock.set_at_least(
                    ctx.place.id, ctx.now + len(fanout) * cost.message(0)
                )
            rt.stats.messages += len(fanout)
            rt.stats.bytes_sent += len(fanout) * cost.scaled_bytes(nbytes)
        if self.stable_fallback:
            rt.engine.stable_write(ctx.place.id, nbytes)
            self._stable[key] = payload
        # The partition is checksummed *once per save* in virtual time;
        # the actual CRC pass is deferred until a verify first needs it
        # (the payload reference is immutable, so late hashing is exact).
        self._checksums.pop(key, None)
        self._crc_pending[key] = (payload, token)
        if not zero:
            ctx.charge_seconds(rt.cost.checksum(nbytes))
        self._verified.add((key, 0))
        for replica in range(1, self.backups + 1):
            self._verified.add((key, replica))
        if self.stable_fallback:
            self._verified.add((key, self.STABLE_TIER))
        self._saved_keys.add(key)
        if token is not None:
            self._versions[key] = token
        self.total_nbytes += nbytes

    # -- delta (incremental) saves -------------------------------------------

    def delta_compatible(self, base: "DistObjectSnapshot") -> bool:
        """True when *base* can donate clean partitions to this snapshot.

        The copies are adopted in place (same heaps, same replica homes),
        so the group, replica count, placement offsets, and stable tier
        must all match; anything else degrades to a full save.
        """
        return (
            type(base) is type(self)
            and base.group.ids == self.group.ids
            and base.backups == self.backups
            and base._offsets == self._offsets
            and base.stable_fallback == self.stable_fallback
        )

    def key_intact(self, key: int) -> bool:
        """True while every tier of *key* still holds its copy.

        A partition that lost any copy (a replica died with its place, a
        quarantined corruption) must be re-saved in full even if its bytes
        are unchanged — reusing a degraded redundancy set would let the
        next failure destroy the last copy.
        """
        if key not in self._saved_keys:
            return False
        rt = self.runtime
        primary = self.group[key]
        if not rt.is_alive(primary.id) or not rt.heap_of(primary.id).contains(
            self._primary_key(key)
        ):
            return False
        for replica in range(1, self.backups + 1):
            backup = self._backup_place(key, replica)
            if not rt.is_alive(backup.id) or not rt.heap_of(backup.id).contains(
                self._backup_key(key, replica)
            ):
                return False
        if self.stable_fallback and key not in self._stable:
            return False
        return True

    def can_reuse(self, key: int, token: Optional[Any]) -> bool:
        """True when *key* is provably clean: same mutation token as the
        one recorded at save time, and the full redundancy set survives."""
        return (
            token is not None
            and self._versions.get(key) == token
            and self.key_intact(key)
        )

    def save_clean_from(self, ctx: PlaceContext, key: int, base: "DistObjectSnapshot") -> None:
        """Adopt an unchanged partition from *base* by reference.

        Every tier's copy is re-referenced under this snapshot's heap keys
        — including a silently corrupted one, which stays unverified here
        (its ``_verified`` entry was discarded when it was struck) and is
        caught by the checksum pass on first use, exactly as it would have
        been in *base*.  No bytes move and nothing is re-hashed, so the
        partition contributes **zero** checkpoint virtual time: the
        dirty-bytes-only cost the tentpole asks for, and the paper's
        ``saveReadOnly`` reuse as the degenerate all-clean case.
        """
        if self.group.index_of(ctx.place) != key:
            # Message built lazily: this guard runs on every partition save.
            require(
                False,
                f"partition {key} must be saved from group index {key}, "
                f"not from {ctx.place}",
            )
        rt = self.runtime
        primary_heap = rt.heap_of(self.group[key].id)
        payload = primary_heap.get(base._primary_key(key))
        nbytes = payload_nbytes(payload)
        primary_heap.put(self._primary_key(key), payload)
        for replica in range(1, self.backups + 1):
            backup_heap = rt.heap_of(self._backup_place(key, replica).id)
            backup_heap.put(
                self._backup_key(key, replica),
                backup_heap.get(base._backup_key(key, replica)),
            )
        if self.stable_fallback:
            self._stable[key] = base._stable[key]
        if key in base._crc_pending:
            self._crc_pending[key] = base._crc_pending[key]
        elif key in base._checksums:
            self._checksums[key] = base._checksums[key]
        tiers = [0] + list(range(1, self.backups + 1))
        if self.stable_fallback:
            tiers.append(self.STABLE_TIER)
        for tier in tiers:
            if (key, tier) in base._verified:
                self._verified.add((key, tier))
        if key in base._versions:
            self._versions[key] = base._versions[key]
        self._saved_keys.add(key)
        self.clean_keys.add(key)
        self.clean_nbytes += nbytes
        self.total_nbytes += nbytes

    def stored_nbytes(self) -> float:
        """Physical bytes this snapshot occupies across every tier.

        ``total_nbytes`` counts each partition's logical size once; the
        replica tiers and the optional disk copy each store it again —
        the ``k x`` footprint the parity tier exists to undercut.
        """
        copies = self.backups + 1 + (1 if self.stable_fallback else 0)
        return self.total_nbytes * copies

    @property
    def num_keys(self) -> int:
        """Number of partitions saved so far."""
        return len(self._saved_keys)

    def has_key(self, key: int) -> bool:
        return key in self._saved_keys

    # -- locating / loading -------------------------------------------------

    def locate(self, key: int) -> Tuple[int, tuple]:
        """``(place_id, heap_key)`` of a surviving *verified* copy of *key*.

        Prefers the primary copy, then the backups in placement order, then
        the stable tier (place id :data:`STABLE_TIER`).  Every candidate is
        checksum-verified before being offered: a copy that fails
        verification is quarantined (dropped from its tier) and the search
        falls through to the next tier.  Raises :class:`DataLossError` when
        every tier has lost the key, or :class:`SnapshotCorruptionError`
        when the *last* surviving copies were quarantined — corrupt data is
        never silently restored.
        """
        if key not in self._saved_keys:
            require(False, f"snapshot has no key {key}")
        rt = self.runtime
        primary = self.group[key]
        quarantined_before = len(self.quarantined)
        if rt.is_alive(primary.id) and rt.heap_of(primary.id).contains(self._primary_key(key)):
            if self._verify_copy(key, 0, primary.id, self._primary_key(key)):
                return primary.id, self._primary_key(key)
        for replica in range(1, self.backups + 1):
            backup = self._backup_place(key, replica)
            heap_key = self._backup_key(key, replica)
            if rt.is_alive(backup.id) and rt.heap_of(backup.id).contains(heap_key):
                if self._verify_copy(key, replica, backup.id, heap_key):
                    return backup.id, heap_key
        if key in self._stable:
            if self._verify_copy(key, self.STABLE_TIER, self.STABLE_TIER, None):
                return self.STABLE_TIER, ("stable", self.snap_id, key)
        if len(self.quarantined) > quarantined_before:
            raise SnapshotCorruptionError(
                f"every surviving copy of snapshot key {key} failed checksum "
                f"verification and was quarantined "
                f"({len(self.quarantined) - quarantined_before} this search)"
            )
        raise DataLossError(
            f"all {self.backups + 1} in-memory copies of snapshot key {key} lost "
            f"(primary {primary} and its replica set; no stable-storage tier)"
        )

    def _expected_checksum(self, key: int) -> Optional[int]:
        """Ground-truth CRC of *key*, computing a deferred one on demand."""
        pending = self._crc_pending.pop(key, None)
        if pending is not None:
            payload, token = pending
            self._checksums[key] = memoized_checksum(payload, token)
        return self._checksums.get(key)

    def _verify_copy(
        self, key: int, tier: int, place_id: int, heap_key: Optional[tuple]
    ) -> bool:
        """Checksum one copy; quarantine and return False on mismatch.

        Clean verdicts are memoized per ``(key, tier)`` so health polling
        (``recoverable`` etc.) re-hashes nothing; a new corruption strike
        invalidates the memo.  The hash pass is charged to the place
        holding the copy (the disk tier's pass rides the restore read).
        """
        if (key, tier) in self._verified:
            return True
        rt = self.runtime
        if tier == self.STABLE_TIER:
            payload = self._stable[key]
        else:
            payload = rt.heap_of(place_id).get(heap_key)
            rt.clock.advance(place_id, rt.cost.checksum(payload_nbytes(payload)))
        expected = self._expected_checksum(key)
        if expected is None or memoized_checksum(payload, self._versions.get(key)) == expected:
            self._verified.add((key, tier))
            return True
        if tier == self.STABLE_TIER:
            del self._stable[key]
        else:
            rt.heap_of(place_id).remove_if_present(heap_key)
        self.quarantined.append((key, tier))
        return False

    # -- corruption injection (chaos campaigns) ------------------------------

    def saved_keys(self) -> List[int]:
        """Keys saved into this snapshot, sorted."""
        return sorted(self._saved_keys)

    def tiers(self, key: int) -> List[int]:
        """Tiers currently holding a copy of *key*: 0 = primary, 1..k =
        replicas, :data:`STABLE_TIER` = disk."""
        rt = self.runtime
        out: List[int] = []
        if key in self._saved_keys:
            primary = self.group[key]
            if rt.is_alive(primary.id) and rt.heap_of(primary.id).contains(
                self._primary_key(key)
            ):
                out.append(0)
            for replica in range(1, self.backups + 1):
                backup = self._backup_place(key, replica)
                if rt.is_alive(backup.id) and rt.heap_of(backup.id).contains(
                    self._backup_key(key, replica)
                ):
                    out.append(replica)
            if key in self._stable:
                out.append(self.STABLE_TIER)
        return out

    def corrupt_copy(self, key: int, tier: int) -> bool:
        """Replace one tier's copy of *key* with a corrupted *copy*.

        Only the struck tier is damaged — the tiers share the payload
        object, so in-place mutation would corrupt them all at once.
        Returns False when the tier holds no copy (dead place, already
        quarantined).  Fault-injection entry point for
        :class:`~repro.runtime.failure.CorruptionModel` and tests.
        """
        rt = self.runtime
        if key not in self._saved_keys:
            return False
        if tier == self.STABLE_TIER:
            if key not in self._stable:
                return False
            self._stable[key] = corrupt_payload(self._stable[key])
        else:
            place = self.group[key] if tier == 0 else self._backup_place(key, tier)
            heap_key = (
                self._primary_key(key) if tier == 0 else self._backup_key(key, tier)
            )
            if not rt.is_alive(place.id) or not rt.heap_of(place.id).contains(heap_key):
                return False
            heap = rt.heap_of(place.id)
            heap.put(heap_key, corrupt_payload(heap.get(heap_key)))
        self._verified.discard((key, tier))
        return True

    def fetch(
        self,
        ctx: PlaceContext,
        key: int,
        extract: Optional[Callable[[Any], Any]] = None,
        extract_flops: float = 0.0,
        extract_bytes: float = 0.0,
    ) -> Any:
        """Load partition *key* (or an extracted part) to the calling place.

        ``extract`` runs at the *source* place — this models the paper's
        repartitioned restore, where the owning place cuts out only the
        overlap region and ships just that sub-block.  ``extract_flops``
        charges the scanning work (e.g. the sparse non-zero counting pass)
        and ``extract_bytes`` the copy that materializes the sub-block.

        When every in-memory copy is gone the read falls through to the
        stable tier: the restoring place pays the engine's disk read and
        cuts the sub-block locally (there is no owning place left to run
        the extractor on).
        """
        src_id, heap_key = self.locate(key)
        if src_id == self.STABLE_TIER:
            payload = self._stable[key]
            self.runtime.engine.stable_read(ctx.place.id, payload_nbytes(payload))
            self.fallback_reads += 1
            self.runtime.stats.stable_fallback_reads += 1
            if extract is not None:
                payload = extract(payload)
                ctx.charge_memcpy(payload_nbytes(payload))
            return payload
        payload = self.runtime.heap_of(src_id).get(heap_key)
        if extract is not None:
            cost = self.runtime.cost
            charge = cost.flops(extract_flops) + cost.memcpy(extract_bytes)
            if charge:
                self.runtime.clock.advance(src_id, charge)
            payload = extract(payload)
        if src_id == ctx.place.id:
            # Local read: the size only feeds the (zero) memcpy charge.
            if not self.runtime.engine.zero_fast():
                ctx.charge_memcpy(payload_nbytes(payload))
        else:
            _ = ctx.read_remote(src_id, heap_key, payload_nbytes(payload))
        return payload

    def verify_all(self) -> Tuple[int, int]:
        """Integrity scrub: checksum every copy of every key, all tiers.

        Unlike :meth:`locate` (which stops at the first clean copy) this
        verifies the *whole* redundancy set, quarantining every corrupt
        copy found.  Returns ``(clean copies, newly quarantined copies)``.
        """
        clean = 0
        before = len(self.quarantined)
        for key in self.saved_keys():
            for tier in self.tiers(key):
                if tier == self.STABLE_TIER:
                    ok = self._verify_copy(key, tier, self.STABLE_TIER, None)
                elif tier == 0:
                    ok = self._verify_copy(
                        key, 0, self.group[key].id, self._primary_key(key)
                    )
                else:
                    ok = self._verify_copy(
                        key,
                        tier,
                        self._backup_place(key, tier).id,
                        self._backup_key(key, tier),
                    )
                if ok:
                    clean += 1
        return clean, len(self.quarantined) - before

    # -- health -----------------------------------------------------------

    def fully_redundant(self) -> bool:
        """True if every key still has its primary AND all backup copies.

        A snapshot that survived a failure is down to fewer in-memory
        copies for some keys; full redundancy is what the read-only reuse
        optimization requires of snapshots without a stable tier.
        """
        rt = self.runtime
        for key in self._saved_keys:
            copies = [(self.group[key], self._primary_key(key))]
            copies += [
                (self._backup_place(key, r), self._backup_key(key, r))
                for r in range(1, self.backups + 1)
            ]
            for place, heap_key in copies:
                if not rt.is_alive(place.id):
                    return False
                if not rt.heap_of(place.id).contains(heap_key):
                    return False
        return True

    def reusable(self) -> bool:
        """True if a later checkpoint may safely re-reference this snapshot.

        Without a stable tier that means full in-memory redundancy (the
        next failure must not destroy the last copy); with the fallback
        tier the disk copy makes reuse safe even while degraded.
        """
        if self.stable_fallback and self._saved_keys:
            if all(key in self._stable for key in self._saved_keys):
                return True
        return self.fully_redundant()

    def recoverable(self) -> bool:
        """True while at least one copy of every key survives in some tier."""
        try:
            for key in self._saved_keys:
                self.locate(key)
        except DataLossError:
            return False
        return True

    def placement_ok(self) -> bool:
        """Invariant: no backup replica shares a place with its primary
        (vacuously true for single-place groups, which have nowhere else)."""
        if self.group.size <= 1:
            return True
        for key in self._saved_keys:
            primary = self.group[key]
            for replica in range(1, self.backups + 1):
                if self._backup_place(key, replica) == primary:
                    return False
        return True

    def rebind_group(self, new_group: PlaceGroup) -> None:
        """Re-anchor this snapshot to a same-size replacement group.

        Used by checkpoint-free reconstruction after spares replace dead
        members at their old indices: survivors' copies are found at the
        same places as before (same ids at the same indices), while keys
        whose primary or replica homes moved to a spare read as damaged
        (:meth:`key_intact` False) until the caller re-saves them — the
        redundancy-repair pass of
        :class:`~repro.resilience.reconstruct.ReconstructionStore`.
        """
        require(
            new_group.size == self.group.size,
            "rebind_group cannot resize the snapshot group",
        )
        self.group = new_group
        self._backup_homes = self._home_table()

    # -- lifecycle --------------------------------------------------------------

    def delete(self) -> None:
        """Free all surviving copies (old checkpoints are deleted on commit)."""
        rt = self.runtime
        alive = rt._alive
        heaps = rt._heaps
        snap_id = self.snap_id
        for key in self._saved_keys:
            pid = self.group[key].id
            if alive.get(pid, False):
                heaps[pid].remove_if_present(("snap", snap_id, key))
            for r in range(1, self.backups + 1):
                pid = self._backup_place(key, r).id
                if alive.get(pid, False):
                    heaps[pid].remove_if_present(("snapb", snap_id, key, r))
        self._stable.clear()
        self._saved_keys.clear()

    def __repr__(self) -> str:
        return (
            f"DistObjectSnapshot(id={self.snap_id}, keys={sorted(self._saved_keys)}, "
            f"group={self.group.ids}, backups={self.backups}, "
            f"placement={self.placement.name}, stable_fallback={self.stable_fallback})"
        )
