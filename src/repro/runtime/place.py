"""Places and place groups — the APGAS process abstraction.

An X10 *place* is an OS process holding data and tasks; ``PlaceGroup`` is an
ordered collection of places.  The resilience work in the paper hinges on
two properties reproduced here exactly:

* a place keeps its *identifier* forever, but its *index* within a group
  shifts when dead places are filtered out (``SparsePlaceGroup`` semantics);
* multi-place GML objects are built over an arbitrary group, not the whole
  world, so they can be ``remake``-d over survivors or spares.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.util.validation import check_index, require


class Place:
    """An APGAS place, identified by a stable integer id."""

    __slots__ = ("id",)

    def __init__(self, place_id: int):
        if place_id < 0:
            raise ValueError(f"place id must be >= 0, got {place_id}")
        self.id = place_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Place) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("Place", self.id))

    def __repr__(self) -> str:
        return f"Place({self.id})"

    def __lt__(self, other: "Place") -> bool:
        return self.id < other.id


class PlaceGroup:
    """An ordered, duplicate-free collection of places.

    The *index* of a place inside a group (its position) is what GML uses as
    the key of its data partition; the *id* is the stable runtime identity.
    """

    def __init__(self, places: Iterable[Place]):
        self._places: List[Place] = list(places)
        ids = [p.id for p in self._places]
        require(len(set(ids)) == len(ids), f"duplicate places in group: {ids}")
        # Groups are immutable (every mutator builds a new group), so the
        # id -> index map is built once and serves the hot membership /
        # index lookups in O(1) instead of scanning the place list.
        self._index_by_id = {pid: i for i, pid in enumerate(ids)}

    # -- constructors -----------------------------------------------------

    @classmethod
    def of_ids(cls, ids: Iterable[int]) -> "PlaceGroup":
        """Build a group from raw place ids (order preserved)."""
        return cls(Place(i) for i in ids)

    @classmethod
    def dense(cls, n: int) -> "PlaceGroup":
        """The canonical group of places ``0..n-1``."""
        return cls.of_ids(range(n))

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._places)

    @property
    def size(self) -> int:
        """Number of places in the group (X10 ``PlaceGroup.size()``)."""
        return len(self._places)

    def __iter__(self) -> Iterator[Place]:
        return iter(self._places)

    def __getitem__(self, index: int) -> Place:
        if 0 <= index < len(self._places):
            return self._places[index]
        check_index(index, len(self._places), "place index")
        return self._places[index]  # pragma: no cover - check_index raised

    def __contains__(self, place: object) -> bool:
        return isinstance(place, Place) and place.id in self._index_by_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PlaceGroup) and other._places == self._places

    def __hash__(self) -> int:
        return hash(tuple(p.id for p in self._places))

    def __repr__(self) -> str:
        return f"PlaceGroup({[p.id for p in self._places]})"

    # -- group algebra -----------------------------------------------------

    @property
    def ids(self) -> List[int]:
        """The place ids, in group order."""
        return [p.id for p in self._places]

    def index_of(self, place: Place) -> int:
        """Index of *place* within this group; ``-1`` if absent."""
        return self._index_by_id.get(place.id, -1)

    def contains_id(self, place_id: int) -> bool:
        """True if a place with the given id is in the group."""
        return place_id in self._index_by_id

    def next_place(self, index: int) -> Place:
        """The place after position *index*, wrapping around.

        This is the backup location used by the snapshot double store.
        """
        check_index(index, len(self._places), "place index")
        return self._places[(index + 1) % len(self._places)]

    def filter_dead(self, dead_ids: Sequence[int]) -> "PlaceGroup":
        """Survivor group: same order, dead places removed, indices shifted.

        This reproduces the paper's observation that after a failure "the
        identifiers of the remaining places will remain unchanged, but the
        index of some places will be shifted due to filtering out the dead
        places".
        """
        dead = set(dead_ids)
        return PlaceGroup(p for p in self._places if p.id not in dead)

    def remove(self, place: Place) -> "PlaceGroup":
        """Group without *place* (order preserved)."""
        return PlaceGroup(p for p in self._places if p != place)

    def extend(self, places: Iterable[Place]) -> "PlaceGroup":
        """Group with *places* appended (duplicates rejected)."""
        return PlaceGroup(list(self._places) + list(places))

    def replace(self, old: Place, new: Place) -> "PlaceGroup":
        """Group with *old* substituted by *new* at the same index.

        This is how the replace-redundant mode keeps every data partition on
        the same *index* while swapping the dead place's *id* for a spare's.
        """
        require(old in self, f"{old} not in group")
        require(new not in self, f"{new} already in group")
        return PlaceGroup(new if p == old else p for p in self._places)
