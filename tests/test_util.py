"""Tests for the util package: validation, byte sizing, LOC, trace log."""

import numpy as np
import pytest

from repro.util.bytesize import FRAMING_BYTES, payload_nbytes
from repro.util.loc import AppLocRow, count_loc, loc_of_object, loc_report, method_loc_map
from repro.util.logging import TraceLog
from repro.util.validation import (
    check_index,
    check_non_negative,
    check_positive,
    check_same_length,
    require,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_positive(self):
        assert check_positive(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(TypeError):
            check_positive(1.5, "x")
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")

    def test_check_index(self):
        assert check_index(2, 3) == 2
        with pytest.raises(IndexError):
            check_index(3, 3)
        with pytest.raises(IndexError):
            check_index(-1, 3)

    def test_check_same_length(self):
        check_same_length([1], [2])
        with pytest.raises(ValueError):
            check_same_length([1], [2, 3])


class TestPayloadNbytes:
    def test_none_and_scalars(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(1) == 8
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(np.float64(2.0)) == 8

    def test_array(self):
        a = np.zeros(10)
        assert payload_nbytes(a) == 80 + FRAMING_BYTES

    def test_containers(self):
        assert payload_nbytes([1, 2]) == FRAMING_BYTES + 16
        assert payload_nbytes({"k": 1}) == FRAMING_BYTES + payload_nbytes("k") + 8

    def test_matrix_classes(self):
        from repro.matrix import DenseMatrix, SparseCSR, Vector

        assert payload_nbytes(Vector.make(4)) == 32 + FRAMING_BYTES
        assert payload_nbytes(DenseMatrix.make(2, 2)) == 32 + FRAMING_BYTES
        s = SparseCSR.from_coo(2, 2, [0], [1], [1.0])
        assert payload_nbytes(s) == s.nbytes + FRAMING_BYTES

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestLoc:
    def test_count_loc_skips_blank_and_comments(self):
        source = "x = 1\n\n# comment\n  # indented comment\ny = 2\n"
        assert count_loc(source) == 2

    def test_loc_of_object(self):
        def sample():
            a = 1
            return a

        assert loc_of_object(sample) == 3

    def test_method_loc_map(self):
        class C:
            def m(self):
                return 1

        assert method_loc_map(C, ["m"]) == {"m": 2}

    def test_report_formatting(self):
        rows = [AppLocRow("App", 10, 20, 3, 4)]
        report = loc_report(rows)
        assert "Application" in report and "App" in report


class TestTraceLog:
    def test_emit_and_filter(self):
        log = TraceLog()
        log.emit("kill", 1.0, place=3)
        log.emit("finish", 2.0, label="x")
        assert len(log.events) == 2
        assert log.of_kind("kill")[0].detail["place"] == 3

    def test_disabled(self):
        log = TraceLog(enabled=False)
        log.emit("kill", 1.0)
        assert log.events == []

    def test_capacity(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.emit("e", float(i))
        assert len(log.events) == 2
        assert log.events[-1].time == 4.0

    def test_listener(self):
        log = TraceLog()
        seen = []
        log.add_listener(lambda e: seen.append(e.kind))
        log.emit("a", 0.0)
        assert seen == ["a"]

    def test_clear(self):
        log = TraceLog()
        log.emit("a", 0.0)
        log.clear()
        assert log.events == []
