"""Tests for the stable-storage snapshot backend."""

import numpy as np
import pytest

from repro.apps.data import PageRankWorkload
from repro.apps.nonresilient.pagerank import PageRankNonResilient
from repro.apps.resilient.pagerank import PageRankResilient
from repro.matrix.dupvector import DupVector
from repro.matrix.distblock import DistBlockMatrix
from repro.resilience.executor import IterativeExecutor
from repro.resilience.stable import StableObjectSnapshot, use_stable_storage
from repro.runtime import CostModel, Runtime


def make_rt(n=4, cost=None, **kw):
    return Runtime(n, cost=cost or CostModel.zero(), **kw)


class TestStableSnapshot:
    def test_roundtrip(self):
        rt = make_rt()
        v = DupVector.make(rt, 6).init_random(1)
        use_stable_storage(v)
        ref = v.to_array()
        snap = v.make_snapshot()
        assert isinstance(snap, StableObjectSnapshot)
        v.fill(0.0)
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), ref)

    def test_survives_adjacent_double_failure(self):
        # The exact scenario that defeats the in-memory double store.
        rt = make_rt(5)
        v = DupVector.make(rt, 6).init_random(3)
        use_stable_storage(v)
        ref = v.to_array()
        snap = v.make_snapshot()
        rt.kill(1)
        rt.kill(2)
        v.remake(rt.live_world())
        v.restore_snapshot(snap)
        assert np.allclose(v.to_array(), ref)

    def test_survives_all_nonzero_places_dying(self):
        rt = make_rt(4)
        g = DistBlockMatrix.make_dense(rt, 8, 4, 4, 1).init_random(2)
        use_stable_storage(g)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        for victim in (1, 2, 3):
            rt.kill(victim)
        g.remake(rt.live_world())
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    def test_regridded_restore_works(self):
        from repro.matrix.grid import Grid

        rt = make_rt(4)
        g = DistBlockMatrix.make_sparse(rt, 20, 8, 8, 2).init_random(3, density=0.3)
        use_stable_storage(g)
        ref = g.to_dense().data
        snap = g.make_snapshot()
        g.remake(rt.world, new_grid=Grid.partition(20, 8, 5, 1))
        g.restore_snapshot(snap)
        assert np.array_equal(g.to_dense().data, ref)

    def test_charges_disk_rates(self):
        cost = CostModel(disk_byte_time=1e-3)
        times = {}
        for stable in (False, True):
            rt = make_rt(3, cost=cost)
            v = DupVector.make(rt, 128).init(1.0)
            v.snapshot_to_stable_storage = stable
            t0 = rt.clock.global_time()
            v.make_snapshot()
            times[stable] = rt.clock.global_time() - t0
        assert times[True] > times[False]  # disk writes vs free memcpy

    def test_fully_redundant_always(self):
        rt = make_rt(4)
        v = DupVector.make(rt, 4).init(1.0)
        use_stable_storage(v)
        snap = v.make_snapshot()
        rt.kill(1)
        rt.kill(2)
        assert snap.fully_redundant()

    def test_delete(self):
        rt = make_rt(3)
        v = DupVector.make(rt, 4).init(1.0)
        use_stable_storage(v)
        snap = v.make_snapshot()
        snap.delete()
        with pytest.raises(ValueError):
            snap.locate(0)


class TestStableEndToEnd:
    def test_pagerank_recovers_via_stable_storage(self):
        wl = PageRankWorkload(
            nodes_per_place=24, out_degree=3, iterations=10, blocks_per_place=2
        )
        ref_rt = make_rt(4)
        ref = PageRankNonResilient(ref_rt, wl)
        ref.run()

        rt = make_rt(4, resilient=True)
        app = PageRankResilient(rt, wl)
        use_stable_storage(app.G, app.U, app.P)
        # Adjacent double failure: unrecoverable in-memory, fine on disk.
        rt.injector.kill_at_iteration(1, iteration=5)
        rt.injector.kill_at_iteration(2, iteration=5)
        report = IterativeExecutor(rt, app, checkpoint_interval=4).run()
        assert report.restores == 1
        assert np.allclose(app.ranks(), ref.ranks(), atol=1e-8)
