"""Linear Regression (resilient) — the framework version of LinReg.

The CG algorithm is identical to the non-resilient program; resilience adds
the ``checkpoint`` and ``restore`` methods.  The training data ``X`` and
labels ``y`` never change, so they are saved with ``save_read_only`` (their
snapshot is created once, in the first checkpoint); the mutable CG state is
the model ``w``, the residual ``r`` and the direction ``p`` — the scalar
``norm_r2`` is recomputed from the restored residual rather than saved.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.data import RegressionWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.grid import Grid
from repro.matrix.ops import dist_block_t_matvec
from repro.resilience.iterative import ResilientIterativeApp
from repro.resilience.store import AppResilientStore
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class LinRegResilient(ResilientIterativeApp):
    """CG linear regression under the resilient iterative framework."""

    def __init__(
        self,
        runtime: Runtime,
        workload: RegressionWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        self.n_examples = workload.examples(group.size)
        d = workload.features
        self.X = DistBlockMatrix.make_dense(
            runtime, self.n_examples, d, workload.row_blocks(group.size), 1, group
        ).init_random(workload.seed)
        row_part = self.X.aligned_row_partition()
        self.y = DistVector.make(runtime, self.n_examples, group, row_part)
        self.y.init_random(workload.seed, tag=1)

        self.w = DupVector.make(runtime, d, group)
        self.r = DupVector.make(runtime, d, group)
        self.p = DupVector.make(runtime, d, group)
        self.q = DupVector.make(runtime, d, group)
        self.Xp = DistVector.make(runtime, self.n_examples, group, row_part)
        self._start_cg()

    @property
    def places(self) -> PlaceGroup:
        return self._places

    def _start_cg(self) -> None:
        dist_block_t_matvec(self.X, self.y, self.r)
        self.p.copy_from(self.r)
        self.norm_r2 = self.r.dot(self.r)
        self.initial_norm_r2 = self.norm_r2

    # -- the framework's four methods -----------------------------------------

    def is_finished(self) -> bool:
        if self.iteration >= self.workload.iterations:
            return True
        tol = self.workload.tolerance
        return tol > 0 and self.norm_r2 <= (tol * tol) * self.initial_norm_r2

    def step(self) -> None:
        lam = self.workload.ridge_lambda
        self.Xp.mult(self.X, self.p)
        dist_block_t_matvec(self.X, self.Xp, self.q)
        self.q.axpy(lam, self.p)
        alpha = self.norm_r2 / self.p.dot(self.q)
        self.w.axpy(alpha, self.p)
        self.r.axpy(-alpha, self.q)
        new_r2 = self.r.dot(self.r)
        beta = new_r2 / self.norm_r2 if self.norm_r2 else 0.0
        self.p.scale(beta)
        self.p.cell_add(self.r)
        self.norm_r2 = new_r2
        self.iteration += 1

    def checkpoint(self, store: AppResilientStore) -> None:
        store.start_new_snapshot()
        store.save_read_only(self.X)
        store.save_read_only(self.y)
        store.save(self.w)
        store.save(self.r)
        store.save(self.p)
        store.commit(iteration=self.iteration)

    def restore(
        self, new_places: PlaceGroup, store: AppResilientStore, snapshot_iter: int
    ) -> None:
        new_grid = None
        if self.restore_context.rebalance:
            new_grid = Grid.partition(
                self.n_examples,
                self.workload.features,
                self.workload.row_blocks(new_places.size),
                1,
            )
        self.X.remake(new_places, new_grid=new_grid)
        row_part = self.X.aligned_row_partition()
        self.y.remake(new_places, row_part)
        self.Xp.remake(new_places, row_part)
        self.w.remake(new_places)
        self.r.remake(new_places)
        self.p.remake(new_places)
        self.q.remake(new_places)
        self._places = new_places
        store.restore()
        self.norm_r2 = self.r.dot(self.r)
        self.iteration = snapshot_iter

    def model(self):
        """The learned weight vector (driver-side copy)."""
        return self.w.to_array()
