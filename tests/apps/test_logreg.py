"""Tests for the LogReg application against a NumPy reference."""

import numpy as np

from repro.apps.data import RegressionWorkload
from repro.apps.nonresilient.logreg import LogRegNonResilient, _sigmoid
from repro.apps.resilient.logreg import LogRegResilient
from repro.resilience.executor import IterativeExecutor, NonResilientExecutor
from repro.runtime import CostModel, Runtime


def small_wl(iterations=10):
    return RegressionWorkload(
        features=8,
        examples_per_place=50,
        iterations=iterations,
        blocks_per_place=2,
        learning_rate=0.05,
    )


def make_rt(n=3):
    return Runtime(n, cost=CostModel.zero())


def numpy_gd(X, y, wl, iterations):
    """Reference implementation of the same gradient descent."""
    w = np.zeros(X.shape[1])
    for _ in range(iterations):
        mu = _sigmoid(X @ w)
        grad = X.T @ (mu - y) + wl.ridge_lambda * w
        w -= (wl.learning_rate / X.shape[0]) * grad
    return w


class TestAlgorithm:
    def test_matches_numpy_reference(self):
        rt = make_rt(3)
        wl = small_wl(iterations=8)
        app = LogRegNonResilient(rt, wl)
        X, y = app.X.to_dense().data, app.y.to_array()
        app.run()
        assert np.allclose(app.model(), numpy_gd(X, y, wl, 8), atol=1e-10)

    def test_labels_binary(self):
        rt = make_rt(2)
        app = LogRegNonResilient(rt, small_wl())
        labels = app.y.to_array()
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_loss_decreases(self):
        rt = make_rt(2)
        app = LogRegNonResilient(rt, small_wl(iterations=12))
        app.step()
        first = app.loss
        for _ in range(11):
            app.step()
        assert app.loss < first

    def test_sigmoid_clipping(self):
        z = np.array([-1e9, 0.0, 1e9])
        s = _sigmoid(z)
        assert np.all(np.isfinite(s))
        assert s[1] == 0.5

    def test_resilient_equals_nonresilient_without_failure(self):
        wl = small_wl(iterations=9)
        rt1, rt2 = make_rt(3), make_rt(3)
        a = LogRegNonResilient(rt1, wl)
        NonResilientExecutor(rt1, a).run()
        b = LogRegResilient(rt2, wl)
        IterativeExecutor(rt2, b, checkpoint_interval=4).run()
        assert np.array_equal(a.model(), b.model())

    def test_does_more_work_per_iteration_than_linreg(self):
        # The paper's LogReg iteration costs ~2x LinReg's (two forward
        # passes + gradient); verify via charged flops under a flop-only model.
        from repro.apps.nonresilient.linreg import LinRegNonResilient

        wl = small_wl(iterations=1)
        cost = CostModel(flop_time=1.0)
        rt_a = Runtime(2, cost=cost)
        lin = LinRegNonResilient(rt_a, wl)
        t0 = rt_a.now()
        lin.step()
        lin_time = rt_a.now() - t0

        rt_b = Runtime(2, cost=cost)
        log = LogRegNonResilient(rt_b, wl)
        t0 = rt_b.now()
        log.step()
        log_time = rt_b.now() - t0
        assert log_time > lin_time * 1.2
