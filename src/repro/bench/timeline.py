"""Finish-level profiling: where does the virtual time go?

Every finish (and collective) records a :class:`FinishReport` with its
label, start/end times, task count and bookkeeping-stall component.  These
helpers aggregate the reports into an operation profile — the tool used to
understand, e.g., why PageRank hides resilient bookkeeping while LinReg
does not — and render a coarse ASCII timeline.

The same tooling works offline: the engine's typed event log (the CLI's
``--trace-out`` JSONL dump) converts back into finish reports via
:func:`finish_reports_from_events` / :func:`load_engine_events`, so a
profile can be rendered from a trace file without re-running the app.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.engine.timeline import EngineEvent, iter_spans, load_jsonl
from repro.runtime.finish import FinishReport


def _op_of(label: str) -> str:
    """Collapse a finish label to its operation name.

    Labels look like ``"DupVector:axpy"`` or ``"matvec"``; the profile
    groups by the part after the class prefix.
    """
    return label.rsplit(":", 1)[-1] if label else "(unlabeled)"


def load_engine_events(path: str) -> List[EngineEvent]:
    """Load a ``--trace-out`` JSONL dump back into typed engine events."""
    return load_jsonl(path)


def finish_reports_from_events(events: Iterable[EngineEvent]) -> List[FinishReport]:
    """Rebuild finish reports from the engine's ``finish`` events.

    Lets :func:`profile_finishes` / :func:`render_timeline` run on a dumped
    trace instead of a live runtime's ``stats.finish_reports``.
    """
    return [
        FinishReport(
            label=e.label,
            start=e.t_start,
            end=e.t_end,
            n_tasks=e.n_tasks,
            task_end_max=e.task_end_max,
            ledger_ready=e.ledger_ready,
        )
        for e in iter_spans(events, "finish")
    ]


@dataclass
class OpProfile:
    """Aggregated statistics of one operation kind."""

    op: str
    count: int = 0
    total_time: float = 0.0
    ledger_stall: float = 0.0
    tasks: int = 0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    @property
    def stall_fraction(self) -> float:
        """Share of this op's time spent waiting on place-zero bookkeeping."""
        return self.ledger_stall / self.total_time if self.total_time else 0.0


def profile_finishes(reports: Sequence[FinishReport]) -> List[OpProfile]:
    """Aggregate finish reports into per-operation profiles, largest first."""
    by_op: Dict[str, OpProfile] = {}
    for report in reports:
        op = _op_of(report.label)
        profile = by_op.setdefault(op, OpProfile(op=op))
        profile.count += 1
        profile.total_time += report.duration
        profile.ledger_stall += report.ledger_stall
        profile.tasks += report.n_tasks
    return sorted(by_op.values(), key=lambda p: p.total_time, reverse=True)


def render_profile(reports: Sequence[FinishReport], top: int = 12) -> str:
    """A text table of the most expensive operations."""
    profiles = profile_finishes(reports)
    total = sum(p.total_time for p in profiles) or 1.0
    lines = [
        f"{'operation':<22s} {'count':>6s} {'total(ms)':>10s} {'mean(ms)':>9s} "
        f"{'share':>6s} {'bk-stall':>8s}"
    ]
    for p in profiles[:top]:
        lines.append(
            f"{p.op:<22s} {p.count:>6d} {p.total_time * 1e3:>10.2f} "
            f"{p.mean_time * 1e3:>9.3f} {p.total_time / total:>6.1%} "
            f"{p.stall_fraction:>8.1%}"
        )
    if len(profiles) > top:
        rest = sum(p.total_time for p in profiles[top:])
        lines.append(f"{'(other)':<22s} {'':>6s} {rest * 1e3:>10.2f}")
    return "\n".join(lines)


def render_timeline(
    reports: Sequence[FinishReport], width: int = 72, max_rows: int = 40
) -> str:
    """A coarse ASCII Gantt chart of finishes over virtual time."""
    if not reports:
        return "(no finishes recorded)"
    t_end = max(r.end for r in reports) or 1.0
    lines = [f"virtual time 0 .. {t_end * 1e3:.2f} ms ({len(reports)} finishes)"]
    shown = list(reports)[:max_rows]
    for r in shown:
        lo = int(r.start / t_end * width)
        hi = max(lo + 1, int(r.end / t_end * width))
        bar = " " * lo + "█" * (hi - lo)
        lines.append(f"{bar:<{width}s}| {_op_of(r.label)} ({r.duration * 1e3:.2f} ms)")
    if len(reports) > max_rows:
        lines.append(f"... {len(reports) - max_rows} more finishes not shown")
    return "\n".join(lines)
