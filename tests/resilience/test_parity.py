"""Tests for the erasure-coded parity snapshot tier (ROADMAP item 1).

One XOR parity block per group of ``g`` partitions, stored group-external:
any single loss per group reconstructs in memory at ``~(1 + 1/g)x``
checkpoint bytes; a second loss in the same group before a repair falls
through to disk (when the stable tier is on) or raises ``DataLossError``.
"""

import numpy as np
import pytest

from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.vector import Vector
from repro.resilience.parity import PARITY_TIER, ParityObjectSnapshot
from repro.resilience.placement import ParityPlacement, SpreadPlacement
from repro.resilience.reconstruct import ReconstructionStore
from repro.resilience.snapshot import DistObjectSnapshot
from repro.resilience.store import AppResilientStore
from repro.runtime import CostModel, DataLossError, Runtime
from repro.runtime.exceptions import SnapshotCorruptionError


def make_rt(n=6, cost=None):
    return Runtime(n, cost=cost or CostModel.zero())


def save_all(rt, snap, payload_fn):
    group = snap.group

    def task(ctx):
        index = group.index_of(ctx.place)
        snap.save_from(ctx, index, payload_fn(index))

    rt.finish_all(group, task)


def parity_snap(rt, g=2, stable_fallback=False, payload_fn=None):
    snap = ParityObjectSnapshot(
        rt,
        rt.world,
        placement=ParityPlacement(group=g),
        stable_fallback=stable_fallback,
    )
    save_all(rt, snap, payload_fn or (lambda i: Vector.of([float(i)] * 8)))
    return snap


class TestSaveGeometry:
    def test_one_parity_block_per_group(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        # 6 keys, span 2 -> groups {0,1}, {2,3}, {4,5}.
        for gidx in (0, 1, 2):
            place = snap._parity_place(gidx)
            assert rt.heap_of(place.id).contains(("snapp", snap.snap_id, gidx))

    def test_parity_place_is_group_external(self):
        for g in (2, 4):
            rt = make_rt(6)
            snap = parity_snap(rt, g=g)
            for gidx in snap._groups():
                members = {snap.group[m].id for m in snap._group_members(gidx)}
                assert snap._parity_place(gidx).id not in members
        assert snap.placement_ok()

    def test_no_per_key_backups(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        assert snap.backups == 0
        for pid in range(6):
            heap = rt.heap_of(pid)
            assert not heap.keys_with_prefix(("snapb",))

    def test_parity_bytes_are_the_fractional_overhead(self):
        rt = make_rt(8)
        # Large-enough payloads that pickle framing is noise next to the
        # data itself (the parity block stores pickled-and-padded bytes).
        snap = parity_snap(rt, g=4, payload_fn=lambda i: Vector.of([float(i)] * 512))
        logical = snap.total_nbytes - snap.parity_nbytes
        assert snap.parity_nbytes > 0
        # g=4: one block per 4 equal-size members, padded + pickled, so a
        # modest constant above the ideal 1/4 but well under one replica.
        assert snap.stored_nbytes() <= 1.35 * logical

    def test_fully_redundant_requires_parity_blocks(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        assert snap.fully_redundant()
        rt.heap_of(snap._parity_place(0).id).remove(("snapp", snap.snap_id, 0))
        snap._parity.discard(0)
        assert not snap.fully_redundant()


class TestRecoveryLadder:
    def test_single_loss_reconstructs_from_parity(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2, payload_fn=lambda i: Vector.of([i * 10.0] * 4))
        rt.kill(2)
        pid, heap_key = snap.locate(2)
        assert heap_key[0] == "snapr"
        assert pid == snap._parity_place(1).id
        got = rt.heap_of(pid).get(heap_key)
        assert np.allclose(np.asarray(got.data), 20.0)
        assert snap.parity_reads == 1
        assert rt.stats.parity_reconstructions == 1

    def test_any_single_place_loss_is_recoverable(self):
        for victim in range(1, 6):
            rt = make_rt(6)
            snap = parity_snap(rt, g=2)
            rt.kill(victim)
            assert snap.recoverable()
            pid, heap_key = snap.locate(victim)
            assert heap_key[0] == "snapr"

    def test_two_losses_in_one_group_exceed_the_code(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        rt.kill(2)
        rt.kill(3)  # same span-2 group
        with pytest.raises(DataLossError, match="parity group"):
            snap.locate(2)

    def test_dead_parity_holder_plus_member_falls_to_disk(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2, stable_fallback=True)
        holder = snap._parity_place(1).id
        rt.kill(2)
        rt.kill(holder)
        pid, _ = snap.locate(2)
        assert pid == DistObjectSnapshot.STABLE_TIER

    def test_losses_in_different_groups_all_recover(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        # Places 2 and 5 sit in different groups and hold no parity block
        # of the other's group.
        holders = {snap._parity_place(g).id for g in snap._groups()}
        victims = [v for v in (2, 5) if v not in holders][:1] or [2]
        for v in victims:
            rt.kill(v)
            assert snap.locate(v)[1][0] == "snapr"

    def test_parity_tier_listed_between_memory_and_disk(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2, stable_fallback=True)
        tiers = snap.tiers(0)
        assert tiers.index(0) < tiers.index(PARITY_TIER)
        assert tiers.index(PARITY_TIER) < tiers.index(DistObjectSnapshot.STABLE_TIER)


class TestIntegrity:
    def test_corrupt_parity_block_is_quarantined(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2, stable_fallback=True)
        first_member = snap._group_members(1)[0]
        snap.corrupt_copy(first_member, PARITY_TIER)
        rt.kill(2)
        pid, _ = snap.locate(2)
        # The corrupt block must not silently reconstruct: fall to disk.
        assert pid == DistObjectSnapshot.STABLE_TIER
        assert (first_member, PARITY_TIER) in snap.quarantined

    def test_corrupt_parity_without_disk_is_a_loud_loss(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        snap.corrupt_copy(snap._group_members(1)[0], PARITY_TIER)
        rt.kill(2)
        with pytest.raises(SnapshotCorruptionError):
            snap.locate(2)

    def test_verify_all_covers_parity_blocks(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        clean, quarantined = snap.verify_all()
        assert quarantined == 0
        # 6 primaries + 3 parity blocks.
        assert clean == 9
        snap.corrupt_copy(snap._group_members(0)[0], PARITY_TIER)
        clean, quarantined = snap.verify_all()
        assert quarantined == 1


class TestRepair:
    def test_repair_refills_primary_and_parity(self):
        rt = Runtime(6, cost=CostModel.zero(), spares=1)
        snap = parity_snap(rt, g=2)
        rt.kill(2)
        spare = rt.claim_spare()
        ids = list(snap.group.ids)
        ids[2] = spare.id
        from repro.runtime.place import PlaceGroup

        new_group = PlaceGroup.of_ids(ids)
        repaired = snap.repair(new_group)
        # Key 2's primary re-materialized on the spare, nothing else lost.
        assert repaired >= 1
        assert rt.heap_of(spare.id).contains(("snap", snap.snap_id, 2))
        assert snap.fully_redundant()
        pid, heap_key = snap.locate(2)
        assert pid == spare.id and heap_key[0] == "snap"

    def test_repair_rebuilds_missing_parity_block(self):
        rt = make_rt(6)
        snap = parity_snap(rt, g=2)
        holder = snap._parity_place(0).id
        rt.heap_of(holder).remove(("snapp", snap.snap_id, 0))
        snap._parity.discard(0)
        assert snap.repair() == 1
        assert rt.heap_of(holder).contains(("snapp", snap.snap_id, 0))
        assert snap.fully_redundant()


class TestConfigurationGuards:
    def test_store_rejects_parity_with_replicas(self):
        rt = make_rt(4)
        with pytest.raises(ValueError, match="replicas must be <= 1"):
            AppResilientStore(rt, replicas=2, placement=ParityPlacement())

    def test_store_routes_parity_snapshots(self):
        rt = make_rt(6)
        store = AppResilientStore(rt, replicas=1, placement=ParityPlacement(group=2))
        v = DupVector.make(rt, 4).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        snap = store.latest().snapshots[v]
        assert isinstance(snap, ParityObjectSnapshot)
        assert snap.backups == 0

    def test_reconstruction_store_rejects_parity(self):
        rt = make_rt(4)
        with pytest.raises(ValueError, match="replica placement"):
            ReconstructionStore(rt, replicas=1, placement=ParityPlacement())

    def test_replica_placement_rejected_by_parity_snapshot(self):
        rt = make_rt(4)
        with pytest.raises(ValueError, match="ParityPlacement"):
            ParityObjectSnapshot(rt, rt.world, placement=SpreadPlacement())


class TestDeltaComposition:
    def _store(self, rt):
        return AppResilientStore(
            rt, replicas=1, placement=ParityPlacement(group=2), delta=True
        )

    def test_clean_checkpoint_adopts_parity_at_zero_cost(self):
        rt = make_rt(6)
        store = self._store(rt)
        v = DistVector.make(rt, 12).init(2.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        t0 = rt.now()
        store.start_new_snapshot()
        store.save(v)  # untouched: all partitions clean
        store.commit(1)
        assert rt.now() == t0
        snap = store.latest().snapshots[v]
        assert snap.fully_redundant()
        assert store.delta_clean_partitions >= 6

    def test_dirty_member_rebuilds_its_group_block(self):
        rt = make_rt(6)
        store = self._store(rt)
        v = DistVector.make(rt, 12).init(2.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        first = store.latest().snapshots[v]
        v.segment(3).scale(4.5)  # dirty exactly one partition -> 9.0
        store.start_new_snapshot()
        store.save(v)
        store.commit(1)
        second = store.latest().snapshots[v]
        assert second is not first
        # The dirty group's block differs from the base; clean groups
        # adopted theirs by reference.
        dirty_gidx = second._parity_group(3)
        assert second.fully_redundant()
        rt.kill(second.group[3].id)
        pid, heap_key = second.locate(3)
        assert heap_key[0] == "snapr"
        got = rt.heap_of(pid).get(heap_key)
        assert np.allclose(np.asarray(got.data), 9.0)
        assert dirty_gidx in second._parity


class TestStoredBytes:
    def test_total_stored_bytes_replication_multiplies(self):
        rt = make_rt(6)
        store = AppResilientStore(rt, replicas=2, placement=SpreadPlacement())
        v = DupVector.make(rt, 6).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        assert store.total_stored_bytes() == pytest.approx(
            3 * store.total_checkpoint_bytes()
        )

    def test_parity_overhead_is_fractional(self):
        rt = make_rt(8)
        store = AppResilientStore(rt, replicas=1, placement=ParityPlacement(group=4))
        v = DupVector.make(rt, 4096).init(1.0)
        store.start_new_snapshot()
        store.save(v)
        store.commit(0)
        snap = store.latest().snapshots[v]
        logical = snap.total_nbytes - snap.parity_nbytes
        assert logical < store.total_stored_bytes() <= 1.35 * logical
