"""Job specifications, the mixed-workload stream, and baselines.

A *job* is one iterative application (linreg / logreg / pagerank / gnmf)
at a given place count and iteration budget.  The stream generator draws
job sizes from a Zipf distribution (many small tenants, a heavy tail of
big ones — the shape shared clusters actually see) and arrival times from
a Poisson process, all deterministically from the service seed.

Workloads are deliberately tiny, like the chaos campaigns': a service run
executes dozens of full jobs and what matters is scheduling, recovery and
confinement — per-iteration numerics are already covered elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.data import (
    CGWorkload,
    GnmfWorkload,
    PageRankWorkload,
    RegressionWorkload,
)
from repro.apps.nonresilient import (
    CGNonResilient,
    GnmfNonResilient,
    LinRegNonResilient,
    LogRegNonResilient,
    PageRankNonResilient,
)
from repro.apps.resilient import (
    CGResilient,
    GnmfResilient,
    LinRegResilient,
    LogRegResilient,
    PageRankResilient,
)
from repro.baseline import failure_free_result
from repro.util.validation import check_positive, require


def _service_regression(iterations: int) -> RegressionWorkload:
    return RegressionWorkload(
        features=8, examples_per_place=32, blocks_per_place=2, iterations=iterations
    )


def _service_pagerank(iterations: int) -> PageRankWorkload:
    return PageRankWorkload(
        nodes_per_place=18, out_degree=3, blocks_per_place=2, iterations=iterations
    )


def _service_gnmf(iterations: int) -> GnmfWorkload:
    return GnmfWorkload(
        rows_per_place=24,
        cols=12,
        rank=4,
        density=0.2,
        blocks_per_place=2,
        iterations=iterations,
    )


def _service_cg(iterations: int) -> CGWorkload:
    return CGWorkload(rows_per_place=24, stride=7, iterations=iterations)


#: app name → (non-resilient class, resilient class, workload factory,
#: result accessor).  The chaos trio plus GNMF — the full mixed workload.
#: CG rides along as the checkpoint-free tenant: ``ServiceConfig`` opts it
#: into the stream (the default apps tuple is unchanged so existing seeded
#: streams stay bit-identical) and runs it under ``recovery="reconstruct"``.
SERVICE_APPS: Dict[str, Tuple[type, type, Callable, Callable]] = {
    "linreg": (
        LinRegNonResilient,
        LinRegResilient,
        _service_regression,
        lambda app: app.model(),
    ),
    "logreg": (
        LogRegNonResilient,
        LogRegResilient,
        _service_regression,
        lambda app: app.model(),
    ),
    "pagerank": (
        PageRankNonResilient,
        PageRankResilient,
        _service_pagerank,
        lambda app: app.ranks(),
    ),
    "gnmf": (
        GnmfNonResilient,
        GnmfResilient,
        _service_gnmf,
        lambda app: app.factors()[0],
    ),
    "cg": (
        CGNonResilient,
        CGResilient,
        _service_cg,
        lambda app: app.solution(),
    ),
}


@dataclass(frozen=True)
class JobSpec:
    """One admitted-or-queued unit of work."""

    job_id: int
    app: str
    places: int
    iterations: int
    arrival: float
    checkpoint_interval: int = 3
    #: Reserve places committed up-front under ``dedicated`` economics.
    dedicated_spares: int = 1

    def __post_init__(self) -> None:
        require(self.app in SERVICE_APPS, f"unknown app {self.app!r}")
        check_positive(self.places, "places")
        check_positive(self.iterations, "iterations")
        require(self.arrival >= 0, "arrival must be >= 0")


@dataclass
class JobResult:
    """Outcome and per-job metrics of one stream entry."""

    job_id: int
    app: str
    places: int
    #: "completed" | "data-loss" | "rejected" | "aborted"
    status: str
    arrival: float
    admitted: float = 0.0
    finished: float = 0.0
    queue_wait: float = 0.0
    latency: float = 0.0
    restores: int = 0
    #: Checkpoint-free recoveries (CG under ``recovery="reconstruct"``).
    reconstructions: int = 0
    failures_observed: int = 0
    spares_claimed: int = 0
    borrows: int = 0
    #: Place count at completion (< ``places`` when recovery shrank).
    final_places: int = 0
    #: Ids killed while this job was the active tenant.
    kills_during_run: List[int] = field(default_factory=list)
    #: True when the converged answer matched the failure-free baseline.
    result_ok: Optional[bool] = None
    detail: str = ""

    @property
    def survived(self) -> bool:
        return self.status == "completed"


def generate_jobs(
    n: int,
    seed: int,
    arrival_rate: float,
    apps: Tuple[str, ...] = ("linreg", "logreg", "pagerank", "gnmf"),
    min_places: int = 2,
    max_places: int = 6,
    min_iterations: int = 4,
    max_iterations: int = 12,
    checkpoint_interval: int = 3,
    zipf_a: float = 2.2,
    dedicated_spares: int = 1,
) -> List[JobSpec]:
    """A seeded stream of *n* mixed jobs.

    Sizes follow ``min_places + (Zipf(a) - 1)`` clipped to *max_places*;
    inter-arrival gaps are exponential with mean ``1 / arrival_rate``
    (virtual seconds).  Pure in ``(seed, n, knobs)``.
    """
    check_positive(n, "n")
    require(arrival_rate > 0, "arrival_rate must be > 0")
    require(min_places >= 1, "min_places must be >= 1")
    require(max_places >= min_places, "max_places must be >= min_places")
    for app in apps:
        require(app in SERVICE_APPS, f"unknown app {app!r}")
    rng = np.random.default_rng([seed, 9001])
    jobs: List[JobSpec] = []
    t = 0.0
    for job_id in range(n):
        t += float(rng.exponential(1.0 / arrival_rate))
        size = min_places + int(rng.zipf(zipf_a)) - 1
        size = min(size, max_places)
        jobs.append(
            JobSpec(
                job_id=job_id,
                app=str(rng.choice(list(apps))),
                places=size,
                iterations=int(rng.integers(min_iterations, max_iterations + 1)),
                arrival=t,
                checkpoint_interval=checkpoint_interval,
                dedicated_spares=dedicated_spares,
            )
        )
    return jobs


class BaselineCache:
    """Memoized failure-free reference answers, keyed by job shape.

    Numerical results depend only on (app, group size, iterations) — never
    on the cost model or on which concrete place ids ran the job — so one
    tiny zero-cost single-job runtime per distinct shape suffices.  Since
    the chaos campaigns need the identical answers, the storage is the
    process-wide memo of :mod:`repro.baseline`, shared across service
    instances, streams, and campaign runs alike.
    """

    def get(self, app: str, places: int, iterations: int) -> np.ndarray:
        return failure_free_result(SERVICE_APPS, app, places, iterations)
