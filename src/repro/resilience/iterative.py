"""The iterative application programming model (paper §V-A2).

A resilient iterative GML application implements exactly four methods —
``is_finished``, ``step``, ``checkpoint``, ``restore`` — and hands control
to the executor.  Restricting the programming model is what lets the
framework provide fault tolerance with near-transparency, the same trade
MapReduce makes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.resilience.store import AppResilientStore
from repro.runtime.place import PlaceGroup


@dataclass(frozen=True)
class RestoreContext:
    """Extra information the executor exposes to ``restore``.

    The paper passes ``(newPlaces, store, snapshotIter)``; the executor's
    restoration *mode* additionally determines whether a
    ``DistBlockMatrix`` keeps its grid (shrink / replace-redundant) or
    repartitions (shrink-rebalance), so the chosen rebalance flag rides
    along here.
    """

    rebalance: bool = False


class ResilientIterativeApp(ABC):
    """Base class for applications run by the resilient executor."""

    #: Populated by the executor before each ``restore`` call.
    restore_context: RestoreContext = RestoreContext()

    @property
    @abstractmethod
    def places(self) -> PlaceGroup:
        """The place group the application currently runs on."""

    @abstractmethod
    def is_finished(self) -> bool:
        """Evaluate the termination condition (iteration count or
        convergence)."""

    @abstractmethod
    def step(self) -> None:
        """One iteration of the algorithm's body."""

    @abstractmethod
    def checkpoint(self, store: AppResilientStore) -> None:
        """Save the state of every contributing GML object into *store*
        (start → save/save_read_only → commit)."""

    @abstractmethod
    def restore(
        self, new_places: PlaceGroup, store: AppResilientStore, snapshot_iter: int
    ) -> None:
        """Roll back to the snapshot iteration: ``remake`` every GML object
        over *new_places*, then ``store.restore()``, then reset the loop
        counter to *snapshot_iter*."""


class ReconstructableIterativeApp(ResilientIterativeApp):
    """An app that additionally supports checkpoint-free recovery.

    Two extra methods extend the four-method model for
    ``recovery="reconstruct"`` (the ABFT mode): after every successful
    step the executor calls :meth:`publish_redundant`, and on a failure it
    calls :meth:`reconstruct` *instead of* rolling back — the classic
    ``checkpoint``/``restore`` pair stays as the fallback for bursts that
    exceed the published redundancy.
    """

    @abstractmethod
    def publish_redundant(self, store, iteration: int) -> None:
        """Publish this iteration's redundant state into a
        :class:`~repro.resilience.reconstruct.ReconstructionStore`:
        statics once (``save_static``), the dynamic vectors every call
        (one atomic ``publish``)."""

    @abstractmethod
    def reconstruct(self, new_places: PlaceGroup, store, lost_indices) -> None:
        """Rebuild the partitions at *lost_indices* onto *new_places*
        (same size, spares at the dead members' indices) from the store's
        surviving copies, leaving every place at the last published
        boundary — the loop counter does **not** roll back.  Raises
        ``DataLossError`` when the burst exceeded the redundancy."""
