"""PageRank (non-resilient) — the paper's Listing 2, line for line.

``P = α·G·P + (1-α)·E·Uᵀ·P`` iterated k times: ``G`` is the sparse
column-stochastic link matrix (a ``DistBlockMatrix``), ``P`` the duplicated
rank vector, ``U`` a distributed personalization vector, ``GP`` the
distributed matvec temporary.  Each iteration is:

1. ``GP.mult(G, P).scale(alpha)``
2. ``UtP1a = U.dot(P) * (1 - alpha)``
3. ``GP.copyTo(P.local())``  (gather)
4. ``P.local().cellAdd(UtP1a)``
5. ``P.sync()``  (broadcast)
"""

from __future__ import annotations

from typing import Optional

from repro.apps.data import PageRankWorkload
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.distvector import DistVector
from repro.matrix.dupvector import DupVector
from repro.matrix.random import LinkMatrix
from repro.runtime.place import PlaceGroup
from repro.runtime.runtime import Runtime


class PageRankNonResilient:
    """Plain PageRank power iteration over GML."""

    def __init__(
        self,
        runtime: Runtime,
        workload: PageRankWorkload,
        group: Optional[PlaceGroup] = None,
    ):
        self.runtime = runtime
        self.workload = workload
        group = group if group is not None else runtime.world
        self._places = group
        self.iteration = 0

        n = workload.nodes(group.size)
        self.link = LinkMatrix(n, workload.out_degree, workload.seed)
        self.G = DistBlockMatrix.make_sparse(
            runtime, n, n, workload.row_blocks(group.size), 1, group
        ).init_link_matrix(self.link)
        row_part = self.G.aligned_row_partition()
        self.P = DupVector.make(runtime, n, group).init(1.0 / n)
        self.U = DistVector.make(runtime, n, group, row_part).fill(1.0 / n)
        self.GP = DistVector.make(runtime, n, group, row_part)

    @property
    def places(self) -> PlaceGroup:
        return self._places

    def is_finished(self) -> bool:
        return self.iteration >= self.workload.iterations

    def step(self) -> None:
        """One power iteration (Listing 2's loop body)."""
        alpha = self.workload.alpha
        self.GP.mult(self.G, self.P)
        self.GP.scale(alpha)
        ut_p_1a = self.U.dot(self.P) * (1.0 - alpha)
        self.GP.copy_to(self.P.local())  # gather
        self.P.local().cell_add(ut_p_1a)
        self.P.sync()  # broadcast
        self.iteration += 1

    def run(self) -> None:
        """Iterate to completion."""
        while not self.is_finished():
            self.step()

    def ranks(self):
        """The rank vector (driver-side copy)."""
        return self.P.to_array()
