"""Minimal structured logging for the simulator.

The runtime and executor emit trace events (task launches, failures,
checkpoints, restores) that tests and examples can capture.  A tiny
purpose-built recorder is used instead of the stdlib ``logging`` module so
that events are structured data (inspectable in assertions) rather than
formatted strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class TraceEvent:
    """A single structured trace event."""

    kind: str
    time: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[t={self.time:.6f}] {self.kind}({parts})"


class TraceLog:
    """Append-only event log with optional live listener callbacks."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []

    def emit(self, kind: str, time: float, **detail: Any) -> None:
        """Record an event (no-op when disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(kind=kind, time=time, detail=detail)
        self.events.append(event)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[: len(self.events) - self.capacity]
        for listener in self._listeners:
            listener(event)

    def add_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every emitted event."""
        self._listeners.append(fn)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Return all recorded events of the given kind."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
