"""Ablation — block-by-block vs repartitioned restore (Fig. 1-b vs 1-c).

DESIGN.md calls out the central data-layout decision the paper makes:
keeping the data grid allows whole-block restores but unbalances load;
recalculating it balances load but forces overlap-region sub-block copies
(with an extra non-zero counting pass for sparse blocks).  This ablation
isolates the *restore operation itself* — snapshot once, then restore the
same DistBlockMatrix under both policies — for dense and sparse payloads.
"""

from _common import emit, results_path
from repro.bench import figures
from repro.bench.calibration import pagerank_cost, regression_cost
from repro.matrix.distblock import DistBlockMatrix
from repro.matrix.random import LinkMatrix
from repro.runtime import Runtime

PLACES = 24
M = 24_000  # rows (dense case); graph order (sparse case)


def one_restore(kind: str, regrid: bool) -> dict:
    cost = regression_cost() if kind == "dense" else pagerank_cost()
    rt = Runtime(PLACES, cost=cost, resilient=True)
    if kind == "dense":
        g = DistBlockMatrix.make_dense(rt, M, 100, PLACES * 2, 1).init_random(3)
    else:
        g = DistBlockMatrix.make_sparse(rt, M, M, PLACES * 2, 1)
        g.init_link_matrix(LinkMatrix(M, 20, seed=3))
    snap = g.make_snapshot()
    rt.kill(PLACES // 2)
    survivors = rt.live_world()
    new_grid = (
        DistBlockMatrix.default_regrid(g.m, g.n, g.grid.num_col_blocks, survivors.size)
        if regrid
        else None
    )
    g.remake(survivors, new_grid=new_grid)
    t0 = rt.now()
    g.restore_snapshot(snap)
    restore_s = rt.now() - t0
    loads = g.blocks_per_place()
    return {
        "restore_s": restore_s,
        "imbalance": max(loads) / max(1, min(loads)),
    }


def run_ablation():
    results = {}
    for kind in ("dense", "sparse"):
        for regrid in (False, True):
            label = f"{kind}/{'regrid' if regrid else 'keep-grid'}"
            results[label] = one_restore(kind, regrid)
    return results


def test_ablation_keep_grid_vs_regrid(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = ["policy                restore(s)   block imbalance (max/min)"]
    for label, r in results.items():
        lines.append(f"{label:<22s} {r['restore_s']:9.3f}   {r['imbalance']:6.2f}")
    rows = list(results)
    csv = figures.write_csv(
        results_path("ablation_regrid.csv"),
        list(range(len(rows))),
        {
            "restore_s": [results[r]["restore_s"] for r in rows],
            "imbalance": [results[r]["imbalance"] for r in rows],
        },
    )
    lines.append(f"series written to {csv}")
    emit("Ablation — keep-grid (Fig. 1-b) vs regrid (Fig. 1-c) restore", "\n".join(lines))

    for kind in ("dense", "sparse"):
        keep = results[f"{kind}/keep-grid"]
        regrid = results[f"{kind}/regrid"]
        # The trade the paper describes: regridding costs more restore time
        # but achieves (weakly) better block balance.
        assert regrid["restore_s"] > keep["restore_s"]
        assert regrid["imbalance"] <= keep["imbalance"]
