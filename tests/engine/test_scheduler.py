"""Unit tests for the discrete-event scheduler: transfers, topology routes,
the overlap scope, and dead-place purging."""

import pytest

from repro.engine import Scheduler
from repro.runtime.cost import CostModel
from repro.runtime.exceptions import DeadPlaceException
from repro.runtime.runtime import Runtime


def make_scheduler(cost=None, places=4, **kwargs):
    sched = Scheduler(cost if cost is not None else CostModel.unit(), **kwargs)
    for pid in range(places):
        sched.register_place(pid)
    return sched


class TestServe:
    def test_serial_server_queues(self):
        s = make_scheduler()
        assert s.serve(1, t_request=0.0, duration=5.0) == 5.0
        assert s.serve(1, t_request=1.0, duration=2.0) == 7.0
        # The served place's clock follows the completions.
        assert s.clock.now(1) == 7.0

    def test_distinct_places_do_not_contend(self):
        s = make_scheduler()
        s.serve(1, 0.0, 5.0)
        assert s.serve(2, 0.0, 5.0) == 5.0


class TestTransferRoutes:
    def test_p2p_full_duplex(self):
        # latency=1, byte_time=1 → message(3) = 4.
        s = make_scheduler()
        assert s.transfer(0, 1, 3.0, t_request=0.0) == 4.0
        # Same sender again: serializes on ("tx", 0).
        assert s.transfer(0, 2, 3.0, t_request=0.0) == 8.0
        # Reverse direction is free — full duplex, distinct resources.
        assert s.transfer(1, 0, 3.0, t_request=0.0) == 4.0
        # Third party into the busy receiver queues on ("rx", 1).
        assert s.transfer(2, 1, 3.0, t_request=0.0) == 8.0

    def test_receiver_clock_advances_to_arrival(self):
        s = make_scheduler()
        s.transfer(0, 1, 3.0, t_request=0.0)
        assert s.clock.now(1) == 4.0
        assert s.clock.now(0) == 0.0  # sender does not wait

    def test_intra_node_uses_shm_rate_through_dst_server(self):
        cost = CostModel.unit().with_rates(places_per_node=2, shm_byte_time=0.5)
        s = make_scheduler(cost)
        # Places 0,1 on node 0: shm_message(4) = 1 + 0.5*4 = 3.
        assert s.transfer(0, 1, 4.0, t_request=0.0) == 3.0
        # The shm path shares the destination's communication server.
        assert s.serve(1, t_request=0.0, duration=1.0) == 4.0

    def test_cross_node_serializes_on_shared_nic(self):
        cost = CostModel.unit().with_rates(places_per_node=2, shm_byte_time=0.5)
        s = make_scheduler(cost)
        # Places 0 and 1 both send cross-node: one shared ("nic-tx", 0).
        assert s.transfer(0, 2, 3.0, t_request=0.0) == 4.0
        assert s.transfer(1, 3, 3.0, t_request=0.0) == 8.0
        # A third transfer into node 1 queues on its shared receive NIC.
        assert s.transfer(0, 3, 3.0, t_request=0.0) == 12.0


class TestStableStorage:
    def test_writes_serialize_on_shared_disk(self):
        cost = CostModel.unit().with_rates(disk_byte_time=2.0)
        s = make_scheduler(cost)
        # message(4) = 5 to reach the store, then disk(4) = 8 on the disk.
        assert s.stable_write(1, 4.0) == 13.0
        # A concurrent writer queues behind the first write's disk slot.
        assert s.stable_write(2, 4.0) == 21.0
        assert s.clock.now(1) == 13.0
        assert s.clock.now(2) == 21.0

    def test_read_pays_disk_then_message(self):
        cost = CostModel.unit().with_rates(disk_byte_time=2.0)
        s = make_scheduler(cost)
        # disk(4) = 8, then message(4) = 5 back to the reader.
        assert s.stable_read(1, 4.0) == 13.0
        assert s.clock.now(1) == 13.0


class TestOverlap:
    def test_overlap_defers_arrival_then_drain_applies(self):
        s = make_scheduler()
        with s.overlap():
            done = s.transfer(0, 1, 3.0, t_request=0.0)
        assert done == 4.0
        # The receiver's clock did not move, but the resources did.
        assert s.clock.now(1) == 0.0
        assert s.pending_overlap() == {1: 4.0}
        stall = s.drain_overlap()
        assert stall == 4.0
        assert s.clock.now(1) == 4.0
        assert s.pending_overlap() == {}

    def test_compute_hides_overlapped_arrival(self):
        s = make_scheduler()
        with s.overlap():
            s.transfer(0, 1, 3.0, t_request=0.0)
        # The receiver computes past the deferred arrival: nothing to pay.
        s.clock.set_at_least(1, 10.0)
        assert s.drain_overlap() == 0.0
        assert s.clock.now(1) == 10.0

    def test_resources_stay_busy_during_overlap(self):
        s = make_scheduler()
        with s.overlap():
            s.transfer(0, 1, 3.0, t_request=0.0)
        # A foreground transfer into the same receiver queues behind the
        # deferred one — contention is preserved, only arrivals defer.
        assert s.transfer(2, 1, 3.0, t_request=0.0) == 8.0

    def test_sync_place_waits_for_latest_pending(self):
        s = make_scheduler()
        with s.overlap():
            s.transfer(0, 1, 3.0, t_request=0.0)
        stall = s.drain_overlap(sync_place_id=2)
        assert stall == 4.0
        assert s.clock.now(2) == 4.0

    def test_nested_scopes_defer_until_outermost_exit(self):
        s = make_scheduler()
        with s.overlap():
            with s.overlap():
                s.transfer(0, 1, 3.0, t_request=0.0)
            assert s.overlapping
            s.transfer(0, 2, 3.0, t_request=0.0)
        assert not s.overlapping
        assert set(s.pending_overlap()) == {1, 2}

    def test_drain_skips_dead_places(self):
        s = make_scheduler()
        with s.overlap():
            s.transfer(0, 1, 3.0, t_request=0.0)
        s.purge_place(1)
        assert s.drain_overlap() == 0.0


class TestPurge:
    def test_purged_place_raises_on_all_paths(self):
        s = make_scheduler()
        s.purge_place(2)
        with pytest.raises(DeadPlaceException):
            s.serve(2, 0.0, 1.0)
        with pytest.raises(DeadPlaceException):
            s.transfer(0, 2, 1.0, 0.0)
        with pytest.raises(DeadPlaceException):
            s.transfer(2, 0, 1.0, 0.0)
        with pytest.raises(DeadPlaceException):
            s.stable_write(2, 1.0)
        with pytest.raises(DeadPlaceException):
            s.stable_read(2, 1.0)

    def test_purge_retires_and_removes_place_resources(self):
        s = make_scheduler()
        s.transfer(0, 1, 3.0, 0.0)  # creates ("tx", 0) and ("rx", 1)
        tx0 = s.resource(("tx", 0))
        s.purge_place(0)
        assert tx0.retired
        keys = {r.key for r in s.resources()}
        assert ("tx", 0) not in keys

    def test_shared_nic_survives_a_place_death(self):
        cost = CostModel.unit().with_rates(places_per_node=2)
        s = make_scheduler(cost)
        s.transfer(0, 2, 3.0, 0.0)
        s.purge_place(0)
        # Place 1 shares node 0's NIC; the node is still up.
        assert s.transfer(1, 2, 3.0, t_request=0.0) == 8.0

    def test_runtime_kill_purges_engine_state(self):
        rt = Runtime(4, cost=CostModel.unit(), resilient=True)
        rt.transfer(1, 2, 3.0, rt.clock.now(1))
        rt.kill(2)
        assert rt.engine.is_place_dead(2)
        with pytest.raises(DeadPlaceException):
            rt.engine.serve(2, 0.0, 1.0)


class TestUtilization:
    def test_busy_time_and_served_counts(self):
        s = make_scheduler()
        s.transfer(0, 1, 3.0, 0.0)
        s.transfer(0, 1, 3.0, 0.0)
        util = s.utilization()
        assert util[("tx", 0)] == (8.0, 2)
        assert util[("rx", 1)] == (8.0, 2)
